// Package ir compiles a declarative broadcast protocol (the Spec shape
// defined by internal/core) together with an input prior into a flat,
// immutable Program: a table-driven form of the protocol's entire control
// surface — next-speaker, alphabet and bit-width per transcript state,
// per-(state, player-input) message distributions with pre-built CDF
// samplers, and the output, communication cost and Lemma 3 q-factors of
// every complete transcript. Compile once, execute anywhere: the same
// Program drives the Monte-Carlo estimator's shard loop, single
// transcript sampling, and the blackboard runtime, with zero interface
// calls and zero steady-state allocations.
//
// Bit-identity contract. Every Program execution path is pinned
// bit-identical to the dynamic interpretation it replaces:
//
//   - Float semantics: the per-leaf q-factors are accumulated at compile
//     time by the exact multiply order the dynamic walk uses
//     (q[v] = saved[v]·P(sym|v) along the path), and the estimator's
//     inner table is built through info.QDivergenceSum — the same
//     function the scalar estimator calls — so the values agree by
//     shared code, not replication.
//   - Sampling: sampleCum replicates prob.Dist's cached binary search
//     over the identical in-order partial sums; prob pins that search
//     bit-equal to the linear scan, so table sampling returns the exact
//     outcome Dist.Sample would for the same uniform.
//   - Draw alignment: a dynamic estimator sample consumes 1+k+T uniforms
//     (aux, k inputs, one per message even for point masses). The
//     compiled loop reads only the positions it needs via rng.Lookahead
//     and reconciles with one rng.Skip — same stream values, same final
//     state, at any worker count.
//
// Eligibility. Compilation is gated: bounded state count (≤ 64k interior
// states), bounded input domain, edge and table budgets, and the dynamic
// engine's depth limit. Anything outside the gates — or any spec/prior
// that errors while being walked — compiles to nil, and callers fall
// back to the dynamic path, which surfaces the identical behavior.
// DESIGN.md §13 documents the format and the full equivalence argument.
package ir

import "broadcastic/internal/prob"

// Spec is the protocol shape the compiler consumes. It mirrors
// internal/core.Spec method-for-method over bare []int transcripts so the
// two packages need no import cycle; core adapts its Spec with a zero-cost
// wrapper. All methods must be pure functions of their arguments.
type Spec interface {
	NumPlayers() int
	InputSize() int
	NextSpeaker(t []int) (player int, done bool, err error)
	MessageAlphabet(t []int) (int, error)
	MessageDist(t []int, player, input int) (prob.Dist, error)
	MessageBits(t []int, symbol int) (int, error)
	Output(t []int) (int, error)
}

// Prior mirrors internal/core.Prior: an input distribution whose players
// are independent conditioned on the auxiliary variable. core.Prior
// satisfies it structurally (no transcript appears in its signatures).
type Prior interface {
	NumPlayers() int
	InputSize() int
	AuxSize() int
	AuxProb(z int) float64
	PlayerDist(z, player int) (prob.Dist, error)
}

// Keyer is implemented by specs and priors that can name their own
// semantics with a stable identity string. Only keyed (spec, prior) pairs
// participate in the program cache — an unkeyed value would force a full
// compile walk on every call, which could cost more than the dynamic path
// it replaces. The key must change whenever the protocol's observable
// behavior changes.
type Keyer interface {
	IRKey() string
}

// Compilation gates. A spec outside any bound compiles to nil. The depth
// gate mirrors core's transcript-tree depth limit so a compiled program
// can never accept a transcript the dynamic engine would refuse.
const (
	maxInputSize  = 4096    // immediate bail: per-(state,input) tables explode past this
	maxStates     = 1 << 16 // interior transcript states
	maxDistCells  = 1 << 20 // states × inputSize message-distribution cells
	maxEdges      = 1 << 20 // Σ alphabet over states
	maxAuxCells   = 1 << 20 // auxSize × players and auxSize × leaves
	maxLeafQCells = 1 << 22 // leaves × players × inputSize q-factor floats
	maxDepth      = 4096    // mirrors core's defaultMaxDepth
)
