package ir

import (
	"fmt"

	"broadcastic/internal/blackboard"
	"broadcastic/internal/encoding"
	"broadcastic/internal/rng"
)

// BoardExec instantiates a compiled program on concrete inputs as a
// blackboard scheduler and players — the table-driven counterpart of
// core.SpecProtocol. The program must be FixedWidth (the blackboard
// bridge encodes each symbol in exactly ⌈log₂ alphabet⌉ bits), and a nil
// private source additionally requires Deterministic — the same two
// conditions under which the dynamic bridge succeeds without error, so
// callers gate on them and fall back to the dynamic bridge otherwise.
//
// Draw discipline matches the dynamic bridge exactly: with a private
// source, every message consumes one uniform (even point masses, whose
// outcome ignores it); with nil private, no draws occur.
//
// A BoardExec is single-use and not concurrency-safe, mirroring
// SpecProtocol.
type BoardExec struct {
	p       *Program
	x       []int
	private *rng.Source
	node    int32
	t       []int
}

// NewBoardExec binds a compiled program to the players' inputs.
func NewBoardExec(p *Program, x []int, private *rng.Source) (*BoardExec, error) {
	if len(x) != p.k {
		return nil, fmt.Errorf("ir: input has %d entries, want %d", len(x), p.k)
	}
	for i, v := range x {
		if v < 0 || v >= p.inputSize {
			return nil, fmt.Errorf("ir: input x[%d]=%d outside domain of size %d", i, v, p.inputSize)
		}
	}
	if !p.fixedWidth {
		return nil, fmt.Errorf("ir: program is not fixed-width encodable")
	}
	if private == nil && !p.deterministic {
		return nil, fmt.Errorf("ir: randomized program needs a private randomness source")
	}
	return &BoardExec{p: p, x: x, private: private, node: p.root}, nil
}

// Scheduler returns the blackboard scheduler driving the program: the
// current table state decides the speaker, exactly as the board contents
// decide it in the model (the decoded transcript and the state are the
// same information).
func (e *BoardExec) Scheduler() blackboard.Scheduler {
	return blackboard.FuncScheduler(func(b *blackboard.Board) (int, bool, error) {
		if e.node < 0 {
			return 0, true, nil
		}
		return int(e.p.speaker[e.node]), false, nil
	})
}

// Players returns the blackboard players, one per input entry.
func (e *BoardExec) Players() []blackboard.Player {
	players := make([]blackboard.Player, e.p.k)
	for i := range players {
		i := i
		players[i] = blackboard.FuncPlayer(func(b *blackboard.Board) (blackboard.Message, error) {
			return e.speak(i)
		})
	}
	return players
}

func (e *BoardExec) speak(i int) (blackboard.Message, error) {
	st := e.node
	if st < 0 {
		return blackboard.Message{}, fmt.Errorf("ir: speak on a finished program")
	}
	p := e.p
	md := &p.pool[p.msgDist[int(p.distBase[st])+e.x[i]]]
	var sym int32
	if e.private != nil {
		// One uniform per message, exactly like prob.Dist.Sample.
		u := e.private.Float64()
		if md.det >= 0 {
			sym = md.det
		} else {
			sym = sampleCum(md.cum, md.last, u)
		}
	} else {
		sym = md.det
	}
	var w encoding.BitWriter
	if err := w.WriteBits(uint64(sym), int(p.width[st])); err != nil {
		return blackboard.Message{}, err
	}
	e.t = append(e.t, int(sym))
	e.node = p.edges[int(p.transBase[st])+int(sym)]
	return blackboard.NewMessage(i, &w), nil
}

// Transcript returns the symbols emitted so far.
func (e *BoardExec) Transcript() []int { return e.t }

// Output returns the program's output once the execution has finished.
func (e *BoardExec) Output() (int, error) {
	if e.node >= 0 {
		return 0, fmt.Errorf("ir: output of an unfinished execution")
	}
	return int(e.p.leafOut[-e.node-1]), nil
}
