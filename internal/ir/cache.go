package ir

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"broadcastic/internal/telemetry"
)

// Program cache: compiled programs are pure functions of the (spec,
// prior) identity keys, so they are compiled once per key and shared by
// every estimator call, job submission and sweep cell that names the same
// protocol — repeated submissions skip compilation entirely. Entries are
// content-addressed the same way the jobs result cache addresses results:
// the canonical identity string is hashed with SHA-256, and the hex
// digest is exposed on the Program (KeySHA) so the two cache layers speak
// the same key discipline. The in-memory map is keyed by the preimage to
// keep the hot lookup a plain string compare.
//
// Negative results are cached too: a keyed spec that fails the
// eligibility gates is remembered as nil, so the dynamic fallback pays
// the compile walk at most once per key.

// cacheCap bounds the resident program count. Programs are small (tables
// of a ≤64k-state protocol), and the workloads cycle through far fewer
// distinct (spec, prior) pairs than this; eviction exists only as a
// safety valve, dropping an arbitrary entry.
const cacheCap = 512

type programCache struct {
	mu sync.Mutex
	m  map[string]*Program // nil value = known-ineligible
}

var cache = programCache{m: make(map[string]*Program)}

// keySHA is the content address of a cache key: SHA-256 hex, the exact
// form the jobs result cache uses (see jobs.Spec.Key).
func keySHA(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

func (c *programCache) lookup(key string) (*Program, bool) {
	c.mu.Lock()
	p, ok := c.m[key]
	c.mu.Unlock()
	return p, ok
}

func (c *programCache) store(key string, p *Program) {
	c.mu.Lock()
	if _, ok := c.m[key]; !ok && len(c.m) >= cacheCap {
		for k := range c.m {
			delete(c.m, k)
			break
		}
	}
	c.m[key] = p
	c.mu.Unlock()
}

// cached wraps a compile behind the cache with hit/miss/compile-time
// telemetry. compile runs outside the lock; concurrent misses on the same
// key compile redundantly and one result wins — harmless, since programs
// are immutable and identical.
func cached(key string, rec telemetry.Recorder, compile func() *Program) *Program {
	if p, ok := cache.lookup(key); ok {
		if rec != nil {
			rec.Count(telemetry.IRProgramHits, 1)
		}
		return p
	}
	if rec != nil {
		rec.Count(telemetry.IRProgramMisses, 1)
	}
	span := telemetry.StartSpan(rec, telemetry.IRCompileNs)
	p := compile()
	span.End()
	if p != nil {
		p.keySHA = keySHA(key)
	}
	cache.store(key, p)
	return p
}

// SpecProgram returns the cached control-surface program for a keyed
// spec, compiling on first use. specKey must be the spec's IRKey. Returns
// nil when the spec is ineligible; the caller falls back dynamically.
func SpecProgram(spec Spec, specKey string, rec telemetry.Recorder) *Program {
	return cached("s|"+specKey, rec, func() *Program { return CompileSpec(spec) })
}

// EstimatorProgram returns the cached estimator program for a keyed
// (spec, prior) pair, compiling on first use. Returns nil when the pair
// is ineligible; the caller falls back dynamically.
func EstimatorProgram(spec Spec, prior Prior, specKey, priorKey string, rec telemetry.Recorder) *Program {
	return cached("e|"+specKey+"|"+priorKey, rec, func() *Program { return CompileEstimator(spec, prior) })
}

// ResetProgramCache empties the program cache. It exists for tests that
// assert on hit/miss telemetry; production code never needs it.
func ResetProgramCache() {
	cache.mu.Lock()
	cache.m = make(map[string]*Program)
	cache.mu.Unlock()
}
