package ir

import (
	"fmt"
	"math"
	"testing"

	"broadcastic/internal/prob"
	"broadcastic/internal/rng"
	"broadcastic/internal/telemetry"
)

// testSpec is a synthetic protocol: rounds messages, speaker t%k, binary
// alphabet, with the speaker's message distribution a function of the
// round, the input, and the bias parameter. bias=0 makes every message a
// point mass on the input bit (fully deterministic); bias>0 mixes.
type testSpec struct {
	k, inputSize, rounds int
	bias                 float64
}

func (s testSpec) NumPlayers() int { return s.k }
func (s testSpec) InputSize() int  { return s.inputSize }

func (s testSpec) NextSpeaker(t []int) (int, bool, error) {
	if len(t) >= s.rounds {
		return 0, true, nil
	}
	return len(t) % s.k, false, nil
}

func (s testSpec) MessageAlphabet(t []int) (int, error) { return 2, nil }

func (s testSpec) MessageDist(t []int, player, input int) (prob.Dist, error) {
	bit := input & 1
	if s.bias == 0 {
		return prob.Point(2, bit)
	}
	p := s.bias * (1 + float64(len(t)%3)) / 4
	if bit == 1 {
		p = 1 - p
	}
	return prob.NewDist([]float64{1 - p, p})
}

func (s testSpec) MessageBits(t []int, symbol int) (int, error) { return 1, nil }

func (s testSpec) Output(t []int) (int, error) {
	out := 0
	for _, b := range t {
		out ^= b
	}
	return out, nil
}

// testPrior is independent across players given z, with per-(z, player)
// two-point conditionals.
type testPrior struct {
	k, inputSize, auxSize int
}

func (p testPrior) NumPlayers() int { return p.k }
func (p testPrior) InputSize() int  { return p.inputSize }
func (p testPrior) AuxSize() int    { return p.auxSize }
func (p testPrior) AuxProb(z int) float64 {
	return float64(z+1) / float64(p.auxSize*(p.auxSize+1)/2)
}

func (p testPrior) PlayerDist(z, player int) (prob.Dist, error) {
	w := make([]float64, p.inputSize)
	for v := range w {
		w[v] = 1 + float64((z+player+v)%3)
	}
	return prob.Normalize(w)
}

func TestSampleCumMatchesSampleU(t *testing.T) {
	src := rng.New(41)
	sizes := []int{1, 2, 3, 5, 17, 127, 128, 129, 300}
	for _, n := range sizes {
		for trial := 0; trial < 4; trial++ {
			w := make([]float64, n)
			switch trial {
			case 0: // random positive
				for i := range w {
					w[i] = src.Float64() + 1e-3
				}
			case 1: // sparse: many exact zeros
				for i := range w {
					if src.Bool() {
						w[i] = src.Float64() + 1e-3
					}
				}
				w[src.Intn(n)] = 1 // ensure some mass
			case 2: // point mass
				w[src.Intn(n)] = 1
			case 3: // mass early, zero tail
				w[0] = 1
				if n > 1 {
					w[1] = 0.5
				}
			}
			d, err := prob.Normalize(w)
			if err != nil {
				t.Fatalf("Normalize(size %d trial %d): %v", n, trial, err)
			}
			c := &compiler{poolIdx: make(map[string]int32)}
			id := c.intern(d)
			pd := c.pool[id]

			check := func(u float64) {
				got := int(sampleCum(pd.cum, pd.last, u))
				want := d.SampleU(u)
				if got != want {
					t.Fatalf("size %d trial %d u=%v: sampleCum=%d SampleU=%d", n, trial, u, got, want)
				}
				// The cached path must agree too, regardless of size.
				if cw := d.Cached().SampleU(u); cw != want {
					t.Fatalf("size %d trial %d u=%v: cached=%d linear=%d", n, trial, u, cw, want)
				}
			}
			for i := 0; i <= 1000; i++ {
				check(float64(i) / 1001)
			}
			// Boundary stress: exact prefix sums and their neighbors.
			for _, cum := range pd.cum {
				if cum >= 1 {
					cum = math.Nextafter(1, 0)
				}
				check(cum)
				check(math.Nextafter(cum, 0))
				if nxt := math.Nextafter(cum, 1); nxt < 1 {
					check(nxt)
				}
			}
			check(0)
			check(math.Nextafter(1, 0))
			for i := 0; i < 200; i++ {
				check(src.Float64())
			}
		}
	}
}

func TestCompileSmallDeterministicSpec(t *testing.T) {
	spec := testSpec{k: 2, inputSize: 2, rounds: 2, bias: 0}
	p := CompileSpec(spec)
	if p == nil {
		t.Fatal("CompileSpec returned nil for an eligible spec")
	}
	if p.NumPlayers() != 2 || p.InputSize() != 2 {
		t.Fatalf("shape: k=%d inputSize=%d", p.NumPlayers(), p.InputSize())
	}
	if p.NumStates() != 3 {
		t.Fatalf("NumStates=%d, want 3 (root + two depth-1 states)", p.NumStates())
	}
	if p.NumLeaves() != 4 {
		t.Fatalf("NumLeaves=%d, want 4", p.NumLeaves())
	}
	if !p.Deterministic() || !p.FixedWidth() {
		t.Fatalf("flags: det=%v fixedWidth=%v, want both true", p.Deterministic(), p.FixedWidth())
	}
	syms, bits, outs := p.Leaves()
	seen := map[string]bool{}
	for l, ts := range syms {
		if len(ts) != 2 || bits[l] != 2 {
			t.Fatalf("leaf %d: transcript %v bits %d", l, ts, bits[l])
		}
		if want := ts[0] ^ ts[1]; outs[l] != want {
			t.Fatalf("leaf %d: output %d, want parity %d", l, outs[l], want)
		}
		seen[fmt.Sprint(ts)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("leaves not distinct: %v", seen)
	}
}

func TestCompileRandomizedFlags(t *testing.T) {
	p := CompileSpec(testSpec{k: 3, inputSize: 2, rounds: 4, bias: 0.3})
	if p == nil {
		t.Fatal("CompileSpec returned nil")
	}
	if p.Deterministic() {
		t.Fatal("randomized spec compiled as deterministic")
	}
	if !p.FixedWidth() {
		t.Fatal("binary alphabet with 1-bit charges must be fixed-width")
	}
	if p.NumLeaves() != 16 {
		t.Fatalf("NumLeaves=%d, want 16", p.NumLeaves())
	}
}

// neverDone drives the walk past the depth gate.
type neverDone struct{ testSpec }

func (neverDone) NextSpeaker(t []int) (int, bool, error) { return 0, false, nil }

// errDist fails during the walk.
type errDist struct{ testSpec }

func (errDist) MessageDist(t []int, player, input int) (prob.Dist, error) {
	return prob.Dist{}, fmt.Errorf("boom")
}

func TestCompileGates(t *testing.T) {
	base := testSpec{k: 2, inputSize: 2, rounds: 2, bias: 0}
	if p := CompileSpec(neverDone{base}); p != nil {
		t.Fatal("unbounded-depth spec must compile to nil")
	}
	if p := CompileSpec(errDist{base}); p != nil {
		t.Fatal("erroring spec must compile to nil")
	}
	if p := CompileSpec(testSpec{k: 0, inputSize: 2, rounds: 1}); p != nil {
		t.Fatal("zero players must compile to nil")
	}
	if p := CompileSpec(testSpec{k: 2, inputSize: maxInputSize + 1, rounds: 1}); p != nil {
		t.Fatal("oversized input domain must compile to nil")
	}
	// Shape mismatch between spec and prior.
	if p := CompileEstimator(base, testPrior{k: 3, inputSize: 2, auxSize: 2}); p != nil {
		t.Fatal("player-count mismatch must compile to nil")
	}
	if p := CompileEstimator(base, testPrior{k: 2, inputSize: 3, auxSize: 2}); p != nil {
		t.Fatal("input-size mismatch must compile to nil")
	}
}

// referenceSample replays one estimator sample through the public prob
// API with the dynamic path's draw discipline: one uniform for z, one per
// player input in player order, one per message (even point masses).
func referenceSample(t *testing.T, spec Spec, p *Program, src *rng.Source) (z, leaf int, msgs uint64) {
	t.Helper()
	z = p.zd.Sample(src)
	x := make([]int, p.k)
	for i := 0; i < p.k; i++ {
		x[i] = p.pool[p.priorDist[z*p.k+i]].dist.Sample(src)
	}
	var tr []int
	for {
		speaker, done, err := spec.NextSpeaker(tr)
		if err != nil {
			t.Fatalf("NextSpeaker: %v", err)
		}
		if done {
			break
		}
		d, err := spec.MessageDist(tr, speaker, x[speaker])
		if err != nil {
			t.Fatalf("MessageDist: %v", err)
		}
		tr = append(tr, d.Sample(src))
		msgs++
	}
	// Locate the leaf by matching the transcript.
	syms, _, _ := p.Leaves()
	leaf = -1
	for l, ts := range syms {
		if len(ts) != len(tr) {
			continue
		}
		match := true
		for i := range ts {
			if ts[i] != tr[i] {
				match = false
				break
			}
		}
		if match {
			leaf = l
			break
		}
	}
	if leaf < 0 {
		t.Fatalf("transcript %v not among compiled leaves", tr)
	}
	return z, leaf, msgs
}

func TestShardMatchesReference(t *testing.T) {
	for _, bias := range []float64{0, 0.3} {
		spec := testSpec{k: 3, inputSize: 4, rounds: 5, bias: bias}
		prior := testPrior{k: 3, inputSize: 4, auxSize: 3}
		p := CompileEstimator(spec, prior)
		if p == nil {
			t.Fatalf("CompileEstimator(bias=%v) returned nil", bias)
		}
		const n = 500
		ref := rng.New(7)
		cmp := rng.New(7)
		mark := ref.Mark()
		var wantSum, wantSumSq, wantBits float64
		for s := 0; s < n; s++ {
			z, leaf, _ := referenceSample(t, spec, p, ref)
			in := p.inner[z*p.numLeaves+leaf]
			wantSum += in
			wantSumSq += in * in
			wantBits += p.leafBitsF[leaf]
		}
		sum, sumSq, bits := p.Shard(cmp, n)
		if sum != wantSum || sumSq != wantSumSq || bits != wantBits {
			t.Fatalf("bias=%v: Shard=(%v,%v,%v), reference=(%v,%v,%v)",
				bias, sum, sumSq, bits, wantSum, wantSumSq, wantBits)
		}
		if rd, cd := ref.DrawsSince(mark), cmp.DrawsSince(mark); rd != cd {
			t.Fatalf("bias=%v: draw streams diverged: reference %d, compiled %d", bias, rd, cd)
		}
	}
}

func TestShardZeroAllocs(t *testing.T) {
	spec := testSpec{k: 3, inputSize: 4, rounds: 5, bias: 0.3}
	p := CompileEstimator(spec, testPrior{k: 3, inputSize: 4, auxSize: 3})
	if p == nil {
		t.Fatal("CompileEstimator returned nil")
	}
	src := rng.New(3)
	p.Shard(src, 16) // warm the scratch pool
	allocs := testing.AllocsPerRun(100, func() {
		p.Shard(src, 64)
	})
	if allocs != 0 {
		t.Fatalf("Shard allocates %v per run, want 0", allocs)
	}
}

func TestSampleWalkMatchesReference(t *testing.T) {
	spec := testSpec{k: 3, inputSize: 4, rounds: 5, bias: 0.3}
	p := CompileSpec(spec)
	if p == nil {
		t.Fatal("CompileSpec returned nil")
	}
	ref := rng.New(11)
	cmp := rng.New(11)
	mark := ref.Mark()
	src := rng.New(99)
	for trial := 0; trial < 50; trial++ {
		x := []int{src.Intn(4), src.Intn(4), src.Intn(4)}
		// Reference walk: one draw per message through the spec's dists.
		var wantT []int
		wantBits := 0
		for {
			speaker, done, err := spec.NextSpeaker(wantT)
			if err != nil {
				t.Fatal(err)
			}
			if done {
				break
			}
			d, err := spec.MessageDist(wantT, speaker, x[speaker])
			if err != nil {
				t.Fatal(err)
			}
			sym := d.Sample(ref)
			sb, _ := spec.MessageBits(wantT, sym)
			wantBits += sb
			wantT = append(wantT, sym)
		}
		wantOut, _ := spec.Output(wantT)

		gotT, q, bits, out := p.SampleWalk(x, cmp)
		if len(gotT) != len(wantT) {
			t.Fatalf("trial %d: transcript %v, want %v", trial, gotT, wantT)
		}
		for i := range gotT {
			if gotT[i] != wantT[i] {
				t.Fatalf("trial %d: transcript %v, want %v", trial, gotT, wantT)
			}
		}
		if bits != wantBits || out != wantOut {
			t.Fatalf("trial %d: bits=%d out=%d, want %d/%d", trial, bits, out, wantBits, wantOut)
		}
		// q-factors: q[i][v] = Π_t P(sym_t | v) over i's speaking turns.
		for i := 0; i < 3; i++ {
			for v := 0; v < 4; v++ {
				want := 1.0
				var pre []int
				for _, sym := range wantT {
					speaker, _, _ := spec.NextSpeaker(pre)
					if speaker == i {
						d, _ := spec.MessageDist(pre, i, v)
						want *= d.P(sym)
					}
					pre = append(pre, sym)
				}
				if q[i][v] != want {
					t.Fatalf("trial %d: q[%d][%d]=%v, want %v", trial, i, v, q[i][v], want)
				}
			}
		}
		if rd, cd := ref.DrawsSince(mark), cmp.DrawsSince(mark); rd != cd {
			t.Fatalf("trial %d: draw streams diverged: %d vs %d", trial, rd, cd)
		}
	}
}

func TestEstimatorRows(t *testing.T) {
	spec := testSpec{k: 3, inputSize: 4, rounds: 3, bias: 0.3}
	prior := testPrior{k: 3, inputSize: 4, auxSize: 3}
	p := CompileEstimator(spec, prior)
	if p == nil {
		t.Fatal("CompileEstimator returned nil")
	}
	zd, rows, rowTable, ok := p.EstimatorRows()
	if !ok {
		t.Fatal("EstimatorRows not ok on an estimator program")
	}
	if zd.Size() != 3 || len(rowTable) != 9 {
		t.Fatalf("zd size %d rowTable len %d", zd.Size(), len(rowTable))
	}
	for z := 0; z < 3; z++ {
		for i := 0; i < 3; i++ {
			want, _ := prior.PlayerDist(z, i)
			got := rows[rowTable[z*3+i]]
			for v := 0; v < 4; v++ {
				if got.P(v) != want.P(v) {
					t.Fatalf("row (z=%d, i=%d): P(%d)=%v, want %v", z, i, v, got.P(v), want.P(v))
				}
			}
		}
	}
	if _, _, _, ok := CompileSpec(spec).EstimatorRows(); ok {
		t.Fatal("EstimatorRows must refuse a spec-only program")
	}
}

// keyedSpec attaches an IRKey to a testSpec for cache tests.
type keyedSpec struct {
	testSpec
	key string
}

func (s keyedSpec) IRKey() string { return s.key }

func TestProgramCacheTelemetry(t *testing.T) {
	ResetProgramCache()
	defer ResetProgramCache()
	col := telemetry.NewCollector()
	spec := keyedSpec{testSpec{k: 2, inputSize: 2, rounds: 2, bias: 0.3}, "test/cached"}

	p1 := SpecProgram(spec, spec.IRKey(), col)
	if p1 == nil {
		t.Fatal("first SpecProgram compile failed")
	}
	p2 := SpecProgram(spec, spec.IRKey(), col)
	if p2 != p1 {
		t.Fatal("second lookup did not return the cached program")
	}
	if h, m := col.Counter(telemetry.IRProgramHits), col.Counter(telemetry.IRProgramMisses); h != 1 || m != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", h, m)
	}
	if p1.KeySHA() == "" || len(p1.KeySHA()) != 64 {
		t.Fatalf("KeySHA %q, want 64 hex chars", p1.KeySHA())
	}

	// Ineligible specs are negatively cached: nil both times, second a hit.
	bad := keyedSpec{testSpec{}, "test/bad"}
	bad.inputSize = maxInputSize + 1
	bad.k = 2
	if p := SpecProgram(bad, bad.IRKey(), col); p != nil {
		t.Fatal("ineligible spec compiled")
	}
	if p := SpecProgram(bad, bad.IRKey(), col); p != nil {
		t.Fatal("ineligible spec compiled on second lookup")
	}
	if h := col.Counter(telemetry.IRProgramHits); h != 2 {
		t.Fatalf("hits=%d after negative-cache lookup, want 2", h)
	}
}

func TestBoardExecDeterministic(t *testing.T) {
	spec := testSpec{k: 2, inputSize: 2, rounds: 2, bias: 0}
	p := CompileSpec(spec)
	if p == nil {
		t.Fatal("CompileSpec returned nil")
	}
	for x0 := 0; x0 < 2; x0++ {
		for x1 := 0; x1 < 2; x1++ {
			e, err := NewBoardExec(p, []int{x0, x1}, nil)
			if err != nil {
				t.Fatal(err)
			}
			// Drive the scheduler/players loop by hand.
			for {
				sp, done, err := e.Scheduler().Next(nil)
				if err != nil {
					t.Fatal(err)
				}
				if done {
					break
				}
				if _, err := e.Players()[sp].Speak(nil); err != nil {
					t.Fatal(err)
				}
			}
			out, err := e.Output()
			if err != nil {
				t.Fatal(err)
			}
			if want := x0 ^ x1; out != want {
				t.Fatalf("x=(%d,%d): output %d, want %d", x0, x1, out, want)
			}
			tr := e.Transcript()
			if len(tr) != 2 || tr[0] != x0 || tr[1] != x1 {
				t.Fatalf("x=(%d,%d): transcript %v", x0, x1, tr)
			}
		}
	}
	// Randomized program without a private source must be refused.
	rp := CompileSpec(testSpec{k: 2, inputSize: 2, rounds: 2, bias: 0.3})
	if _, err := NewBoardExec(rp, []int{0, 1}, nil); err == nil {
		t.Fatal("randomized program accepted without private randomness")
	}
}
