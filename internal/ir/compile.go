package ir

import (
	"encoding/binary"
	"math"

	"broadcastic/internal/encoding"
	"broadcastic/internal/info"
	"broadcastic/internal/prob"
)

// CompileSpec flattens spec into a control-surface Program (states,
// transitions, leaf table), or returns nil when spec is outside the
// eligibility gates or errors while being walked. nil always means "use
// the dynamic path" — the dynamic engine surfaces the identical error or
// handles the identical big instance, so callers never lose behavior.
func CompileSpec(spec Spec) *Program {
	c := newCompiler(spec)
	if c == nil {
		return nil
	}
	root, ok := c.walk(nil, 0)
	if !ok {
		return nil
	}
	return c.finish(root)
}

// CompileEstimator is CompileSpec plus the prior-dependent tables: the
// auxiliary sampler, per-(z, player) conditional pool ids, and the
// precomputed inner divergence table inner[z][leaf] =
// Σ_i D(posterior_i ‖ prior_i) — the exact value the dynamic estimator
// computes at a sampled leaf, built through the same info.QDivergenceSum
// on the same q-factor and prior rows.
func CompileEstimator(spec Spec, prior Prior) *Program {
	if spec.NumPlayers() != prior.NumPlayers() || spec.InputSize() != prior.InputSize() {
		return nil
	}
	c := newCompiler(spec)
	if c == nil {
		return nil
	}
	root, ok := c.walk(nil, 0)
	if !ok {
		return nil
	}
	p := c.finish(root)
	if p == nil || !c.extendEstimator(p, prior) {
		return nil
	}
	return p
}

// compiler accumulates the flat tables during the transcript-tree walk.
// The walk mirrors core.EnumerateTranscripts exactly — same q-factor
// multiply order, same reachability pruning — so the compiled leaf set
// and its float annotations match dynamic enumeration bit for bit.
type compiler struct {
	spec      Spec
	k         int
	inputSize int

	speaker    []int32
	alphabet   []int32
	width      []int32
	distBase   []int32
	transBase  []int32
	msgDist    []int32
	edges      []int32
	symBits    []int32
	fused      []int32
	leafBits   []int32
	leafOut    []int32
	leafDepth  []int32
	leafSymOff []int32
	leafSyms   []int32
	leafQ      []float64

	pool    []poolDist
	poolIdx map[string]int32

	q    [][]float64
	seen []bool // players who spoke on the current root-to-state path

	fixedWidth    bool
	deterministic bool
	speakOnce     bool
}

func newCompiler(spec Spec) *compiler {
	k, inputSize := spec.NumPlayers(), spec.InputSize()
	if k < 1 || inputSize < 1 || inputSize > maxInputSize {
		return nil
	}
	c := &compiler{
		spec:          spec,
		k:             k,
		inputSize:     inputSize,
		poolIdx:       make(map[string]int32, 16),
		q:             make([][]float64, k),
		seen:          make([]bool, k),
		leafSymOff:    []int32{0},
		fixedWidth:    true,
		deterministic: true,
		speakOnce:     true,
	}
	for i := range c.q {
		c.q[i] = make([]float64, inputSize)
		for v := range c.q[i] {
			c.q[i][v] = 1
		}
	}
	return c
}

// intern deduplicates a distribution into the pool, keyed by the exact
// float64 bit patterns of its probability vector.
func (c *compiler) intern(d prob.Dist) int32 {
	p := d.Probs()
	key := make([]byte, 8*len(p))
	for i, v := range p {
		binary.LittleEndian.PutUint64(key[i*8:], math.Float64bits(v))
	}
	if id, ok := c.poolIdx[string(key)]; ok {
		return id
	}
	cum := make([]float64, len(p))
	acc := 0.0
	last := int32(len(p) - 1)
	positive := 0
	det := int32(-1)
	for i, v := range p {
		acc += v
		cum[i] = acc
		if v > 0 {
			last = int32(i)
			positive++
			det = int32(i)
		}
	}
	if positive != 1 {
		det = -1
	}
	id := int32(len(c.pool))
	c.pool = append(c.pool, poolDist{cum: cum, last: last, det: det, dist: d})
	c.poolIdx[string(key)] = id
	return id
}

// walk compiles the subtree rooted at transcript t, with bits the charge
// accumulated so far, and returns its encoded node. ok=false aborts the
// whole compilation (gate exceeded or spec error).
func (c *compiler) walk(t []int, bits int) (node int32, ok bool) {
	if len(t) > maxDepth {
		return 0, false
	}
	speaker, done, err := c.spec.NextSpeaker(t)
	if err != nil {
		return 0, false
	}
	if done {
		return c.emitLeaf(t, bits)
	}
	if speaker < 0 || speaker >= c.k {
		return 0, false
	}
	alphabet, err := c.spec.MessageAlphabet(t)
	if err != nil || alphabet < 1 {
		return 0, false
	}
	if len(c.speaker) >= maxStates ||
		(len(c.speaker)+1)*c.inputSize > maxDistCells ||
		len(c.edges)+alphabet > maxEdges {
		return 0, false
	}

	// Per-input message distributions of the speaker at this state.
	distRow := make([]int32, c.inputSize)
	dists := make([][]float64, c.inputSize)
	for v := 0; v < c.inputSize; v++ {
		d, err := c.spec.MessageDist(t, speaker, v)
		if err != nil || d.Size() != alphabet {
			return 0, false
		}
		id := c.intern(d)
		distRow[v] = id
		if c.pool[id].det < 0 {
			c.deterministic = false
		}
		dists[v] = c.pool[id].dist.Probs()
	}

	state := int32(len(c.speaker))
	width := int32(encoding.FixedWidth(uint64(alphabet)))
	c.speaker = append(c.speaker, int32(speaker))
	c.alphabet = append(c.alphabet, int32(alphabet))
	c.width = append(c.width, width)
	c.distBase = append(c.distBase, int32(len(c.msgDist)))
	c.msgDist = append(c.msgDist, distRow...)
	transBase := int32(len(c.edges))
	c.transBase = append(c.transBase, transBase)
	for sym := 0; sym < alphabet; sym++ {
		c.edges = append(c.edges, nodeNone)
		c.symBits = append(c.symBits, 0)
	}
	// Reserve this state's fused row now: states are numbered in preorder,
	// so the row must sit at state*inputSize before recursion allocates
	// child states. The cells are filled after the children exist.
	for v := 0; v < c.inputSize; v++ {
		c.fused = append(c.fused, nodeNone)
	}

	if c.seen[speaker] {
		c.speakOnce = false
	}
	savedSeen := c.seen[speaker]
	c.seen[speaker] = true

	saved := make([]float64, c.inputSize)
	copy(saved, c.q[speaker])
	for sym := 0; sym < alphabet; sym++ {
		// Update the speaker's q-row; prune symbols no input can emit
		// along this prefix (the same rule dynamic enumeration applies).
		reachable := false
		for v := 0; v < c.inputSize; v++ {
			c.q[speaker][v] = saved[v] * dists[v][sym]
			if c.q[speaker][v] > 0 {
				reachable = true
			}
		}
		if !reachable {
			continue
		}
		sb, err := c.spec.MessageBits(t, sym)
		if err != nil || sb < 0 {
			return 0, false
		}
		if int32(sb) != width {
			c.fixedWidth = false
		}
		child, ok := c.walk(append(t, sym), bits+sb)
		if !ok {
			return 0, false
		}
		c.edges[int(transBase)+sym] = child
		c.symBits[int(transBase)+sym] = int32(sb)
	}
	copy(c.q[speaker], saved)
	c.seen[speaker] = savedSeen

	// Fused transitions: when input v's message is a point mass, one
	// table load replaces the whole sample-and-branch step.
	for v := 0; v < c.inputSize; v++ {
		if det := c.pool[distRow[v]].det; det >= 0 {
			c.fused[int(state)*c.inputSize+v] = c.edges[int(transBase)+int(det)]
		}
	}
	return state, true
}

func (c *compiler) emitLeaf(t []int, bits int) (int32, bool) {
	leaf := len(c.leafBits)
	if (leaf+1)*c.k*c.inputSize > maxLeafQCells {
		return 0, false
	}
	out, err := c.spec.Output(t)
	if err != nil {
		return 0, false
	}
	c.leafBits = append(c.leafBits, int32(bits))
	c.leafOut = append(c.leafOut, int32(out))
	c.leafDepth = append(c.leafDepth, int32(len(t)))
	for _, s := range t {
		c.leafSyms = append(c.leafSyms, int32(s))
	}
	c.leafSymOff = append(c.leafSymOff, int32(len(c.leafSyms)))
	for i := 0; i < c.k; i++ {
		c.leafQ = append(c.leafQ, c.q[i]...)
	}
	return int32(-(leaf + 1)), true
}

func (c *compiler) finish(root int32) *Program {
	if len(c.leafBits) == 0 {
		return nil
	}
	p := &Program{
		k:             c.k,
		inputSize:     c.inputSize,
		numStates:     len(c.speaker),
		numLeaves:     len(c.leafBits),
		root:          root,
		speaker:       c.speaker,
		alphabet:      c.alphabet,
		width:         c.width,
		distBase:      c.distBase,
		transBase:     c.transBase,
		msgDist:       c.msgDist,
		edges:         c.edges,
		symBits:       c.symBits,
		fused:         c.fused,
		pool:          c.pool,
		leafBits:      c.leafBits,
		leafOut:       c.leafOut,
		leafDepth:     c.leafDepth,
		leafSymOff:    c.leafSymOff,
		leafSyms:      c.leafSyms,
		leafQ:         c.leafQ,
		fixedWidth:    c.fixedWidth,
		deterministic: c.deterministic,
		speakOnce:     c.speakOnce,
	}
	p.leafBitsF = make([]float64, len(p.leafBits))
	for i, b := range p.leafBits {
		p.leafBitsF[i] = float64(b)
	}
	return p
}

// extendEstimator adds the prior-dependent tables to a freshly compiled
// program. The aux sampler replicates core's auxDist (prob.Normalize over
// AuxProb weights); the inner table is built by info.QDivergenceSum on
// the exact q-factor and prior-probability rows the dynamic estimator
// would hand it, so the values are shared-code identical.
func (c *compiler) extendEstimator(p *Program, prior Prior) bool {
	auxSize := prior.AuxSize()
	if auxSize < 1 || auxSize*p.k > maxAuxCells || auxSize*p.numLeaves > maxAuxCells {
		return false
	}
	w := make([]float64, auxSize)
	for z := range w {
		w[z] = prior.AuxProb(z)
	}
	zd, err := prob.Normalize(w)
	if err != nil {
		return false
	}
	p.zd = zd
	zp := zd.Probs()
	p.auxCum = make([]float64, auxSize)
	acc := 0.0
	p.auxLast = int32(auxSize - 1)
	positive := 0
	p.auxDet = -1
	for z, v := range zp {
		acc += v
		p.auxCum[z] = acc
		if v > 0 {
			p.auxLast = int32(z)
			positive++
			p.auxDet = int32(z)
		}
	}
	if positive != 1 {
		p.auxDet = -1
	}

	p.priorDist = make([]int32, auxSize*p.k)
	for z := 0; z < auxSize; z++ {
		for i := 0; i < p.k; i++ {
			d, err := prior.PlayerDist(z, i)
			if err != nil || d.Size() > p.inputSize {
				return false
			}
			p.priorDist[z*p.k+i] = c.intern(d)
		}
	}
	p.pool = c.pool // intern may have grown the pool

	// Binary-input conditionals flatten to two-compare threshold rows,
	// unlocking the pool-free shard loop (see Program.shardBinary).
	if p.inputSize == 2 {
		p.priorTwo = make([]twoPoint, len(p.priorDist))
		for i, id := range p.priorDist {
			pd := &p.pool[id]
			tp := twoPoint{c0: pd.cum[0], c1: pd.cum[0], det: pd.det, last: pd.last}
			if len(pd.cum) > 1 {
				tp.c1 = pd.cum[1]
			}
			p.priorTwo[i] = tp
		}
	}

	// Inner table: for each (z, leaf), the exact divergence sum the
	// dynamic sample computes after landing on that leaf under that z.
	p.inner = make([]float64, auxSize*p.numLeaves)
	priors := make([][]float64, p.k)
	q := make([][]float64, p.k)
	rowSize := p.k * p.inputSize
	for z := 0; z < auxSize; z++ {
		for i := 0; i < p.k; i++ {
			priors[i] = p.pool[p.priorDist[z*p.k+i]].dist.Probs()
		}
		for l := 0; l < p.numLeaves; l++ {
			for i := 0; i < p.k; i++ {
				q[i] = p.leafQ[l*rowSize+i*p.inputSize : l*rowSize+(i+1)*p.inputSize]
			}
			in, err := info.QDivergenceSum(q, priors)
			if err != nil {
				return false
			}
			p.inner[z*p.numLeaves+l] = in
		}
	}
	p.estimator = true
	p.auxSize = auxSize
	return true
}
