package dist

import (
	"testing"

	"broadcastic/internal/batch"
	"broadcastic/internal/rng"
)

// μ must satisfy the lane-prior contract structurally; the assertion
// lives in a test so the production package keeps zero batch imports.
var _ batch.LanePrior = (*Mu)(nil)

// TestMuLaneRowsMatchPlayerDist pins that the lane row table and index
// map reproduce PlayerDist exactly — same cached Dist values, so lane
// sampling and scalar sampling share distributions bit for bit.
func TestMuLaneRowsMatchPlayerDist(t *testing.T) {
	for _, k := range []int{2, 5, 64} {
		m, err := NewMu(k)
		if err != nil {
			t.Fatal(err)
		}
		rows := m.LaneRows()
		if len(rows) != 2 {
			t.Fatalf("k=%d: %d lane rows, want 2", k, len(rows))
		}
		idx := make([]uint8, k)
		for z := 0; z < k; z++ {
			m.LaneRowsOf(z, idx)
			for i := 0; i < k; i++ {
				want, err := m.PlayerDist(z, i)
				if err != nil {
					t.Fatal(err)
				}
				got := rows[idx[i]]
				for v := 0; v < 2; v++ {
					if got.P(v) != want.P(v) {
						t.Fatalf("k=%d z=%d player %d: lane row P(%d)=%v, PlayerDist %v",
							k, z, i, v, got.P(v), want.P(v))
					}
				}
			}
		}
	}
}

// TestMuLaneRowsAreTwoPointEligible pins that μ's rows pass the lane
// estimator's exactness gate for every k — regression guard for the
// floating-point identity fl((1/k) + (1 − 1/k)) == 1 the lane path needs.
func TestMuLaneRowsAreTwoPointEligible(t *testing.T) {
	for k := 2; k <= 256; k++ {
		m, err := NewMu(k)
		if err != nil {
			t.Fatal(err)
		}
		for ri, row := range m.LaneRows() {
			if _, err := batch.MakeTwoPoint(row); err != nil {
				t.Fatalf("k=%d row %d: %v", k, ri, err)
			}
		}
	}
}

// TestSampleZeroMatchesSample pins draw-for-draw identity between the
// allocation-free SampleZero and the allocating Sample.
func TestSampleZeroMatchesSample(t *testing.T) {
	d, err := NewLemma6Dist(64, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	a, b := rng.New(77), rng.New(77)
	for trial := 0; trial < 2000; trial++ {
		x, zeroAt := d.Sample(a)
		got := d.SampleZero(b)
		if got != zeroAt {
			t.Fatalf("trial %d: SampleZero %d != Sample zeroAt %d", trial, got, zeroAt)
		}
		for i, v := range x {
			want := 1
			if i == zeroAt {
				want = 0
			}
			if v != want {
				t.Fatalf("trial %d: x[%d]=%d inconsistent with zeroAt %d", trial, i, v, zeroAt)
			}
		}
	}
	// Same stream position afterwards.
	if a.Uint64() != b.Uint64() {
		t.Fatal("SampleZero left the stream at a different position than Sample")
	}
}
