package dist

import (
	"math"
	"testing"

	"broadcastic/internal/prob"
	"broadcastic/internal/rng"
)

func TestNewMuValidation(t *testing.T) {
	if _, err := NewMu(1); err == nil {
		t.Fatal("NewMu(1) succeeded")
	}
	if _, err := NewMu(2); err != nil {
		t.Fatalf("NewMu(2): %v", err)
	}
}

func TestMuSupportAlwaysHasZero(t *testing.T) {
	// Condition (1) of Lemma 1: AND of every support point is 0.
	m, _ := NewMu(8)
	src := rng.New(101)
	for trial := 0; trial < 2000; trial++ {
		z, x := m.Sample(src)
		if x[z] != 0 {
			t.Fatalf("special player %d has x=%d", z, x[z])
		}
		if CountZeros(x) == 0 {
			t.Fatal("sampled input with no zeros")
		}
	}
}

func TestMuPlayerDist(t *testing.T) {
	m, _ := NewMu(4)
	d, err := m.PlayerDist(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.P(0) != 1 {
		t.Fatalf("special player dist = %v", d.Probs())
	}
	d, err = m.PlayerDist(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.P(0)-0.25) > 1e-15 {
		t.Fatalf("non-special P(0) = %v, want 1/4", d.P(0))
	}
	if _, err := m.PlayerDist(4, 0); err == nil {
		t.Fatal("out-of-range z succeeded")
	}
	if _, err := m.PlayerDist(0, -1); err == nil {
		t.Fatal("out-of-range player succeeded")
	}
}

func TestMuProbGivenZSumsToOne(t *testing.T) {
	m, _ := NewMu(5)
	for z := 0; z < 5; z++ {
		total := 0.0
		for mask := 0; mask < 1<<5; mask++ {
			x := make([]int, 5)
			for i := range x {
				x[i] = mask >> uint(i) & 1
			}
			p, err := m.ProbGivenZ(x, z)
			if err != nil {
				t.Fatal(err)
			}
			total += p
		}
		if math.Abs(total-1) > 1e-12 {
			t.Fatalf("z=%d: probabilities sum to %v", z, total)
		}
	}
}

func TestMuProbMarginalSumsToOne(t *testing.T) {
	m, _ := NewMu(4)
	total := 0.0
	for mask := 0; mask < 1<<4; mask++ {
		x := make([]int, 4)
		for i := range x {
			x[i] = mask >> uint(i) & 1
		}
		p, err := m.Prob(x)
		if err != nil {
			t.Fatal(err)
		}
		total += p
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("marginal sums to %v", total)
	}
	// All-ones has probability 0 under μ.
	p, _ := m.Prob([]int{1, 1, 1, 1})
	if p != 0 {
		t.Fatalf("Pr[1^k] = %v, want 0", p)
	}
}

func TestMuProbValidation(t *testing.T) {
	m, _ := NewMu(3)
	if _, err := m.ProbGivenZ([]int{0, 1}, 0); err == nil {
		t.Fatal("short input succeeded")
	}
	if _, err := m.ProbGivenZ([]int{0, 1, 2}, 0); err == nil {
		t.Fatal("non-binary input succeeded")
	}
	if _, err := m.ProbGivenZ([]int{0, 1, 1}, 3); err == nil {
		t.Fatal("out-of-range z succeeded")
	}
}

func TestMuSampleMatchesProb(t *testing.T) {
	// Empirical frequency of each input must track Prob for small k.
	m, _ := NewMu(3)
	src := rng.New(102)
	const trials = 300000
	counts := make(map[[3]int]int)
	for i := 0; i < trials; i++ {
		_, x := m.Sample(src)
		counts[[3]int{x[0], x[1], x[2]}]++
	}
	for mask := 0; mask < 8; mask++ {
		x := []int{mask & 1, mask >> 1 & 1, mask >> 2 & 1}
		want, _ := m.Prob(x)
		got := float64(counts[[3]int{x[0], x[1], x[2]}]) / trials
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("input %v: frequency %v, want %v", x, got, want)
		}
	}
}

func TestProbSlice(t *testing.T) {
	m, _ := NewMu(6)
	total := 0.0
	for c := 0; c <= 6; c++ {
		p, err := m.ProbSlice(c)
		if err != nil {
			t.Fatal(err)
		}
		total += p
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("slice probabilities sum to %v", total)
	}
	p0, _ := m.ProbSlice(0)
	if p0 != 0 {
		t.Fatalf("Pr[X_0] = %v, want 0", p0)
	}
	// Pr[exactly two zeroes] is a constant bounded away from 0: the paper
	// conditions on this event. For k=6: C(5,1)(1/6)(5/6)^4 ≈ 0.4.
	p2, _ := m.ProbSlice(2)
	if p2 < 0.3 {
		t.Fatalf("Pr[X_2] = %v unexpectedly small", p2)
	}
	if _, err := m.ProbSlice(7); err == nil {
		t.Fatal("out-of-range slice succeeded")
	}
}

func TestSampleFromSlice(t *testing.T) {
	m, _ := NewMu(7)
	src := rng.New(103)
	for trial := 0; trial < 500; trial++ {
		x, err := m.SampleFromSlice(src, 2)
		if err != nil {
			t.Fatal(err)
		}
		if CountZeros(x) != 2 {
			t.Fatalf("slice sample has %d zeros", CountZeros(x))
		}
	}
	if _, err := m.SampleFromSlice(src, 0); err == nil {
		t.Fatal("c=0 succeeded")
	}
	if _, err := m.SampleFromSlice(src, 8); err == nil {
		t.Fatal("c>k succeeded")
	}
}

func TestSampleFromSliceUniform(t *testing.T) {
	// Conditioned on X_2, the zero pair is uniform over C(k,2) pairs.
	m, _ := NewMu(4)
	src := rng.New(104)
	counts := make(map[[2]int]int)
	const trials = 60000
	for i := 0; i < trials; i++ {
		x, _ := m.SampleFromSlice(src, 2)
		var pair [2]int
		idx := 0
		for j, v := range x {
			if v == 0 {
				pair[idx] = j
				idx++
			}
		}
		counts[pair]++
	}
	want := float64(trials) / 6 // C(4,2) = 6
	for pair, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("pair %v count %d, want ~%v", pair, c, want)
		}
	}
}

func TestMuN(t *testing.T) {
	mn, err := NewMuN(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if mn.InputSize() != 4 || mn.AuxSize() != 9 {
		t.Fatalf("InputSize=%d AuxSize=%d", mn.InputSize(), mn.AuxSize())
	}
	// PlayerDist sums to 1 for every aux value.
	for z := 0; z < mn.AuxSize(); z++ {
		for i := 0; i < 3; i++ {
			d, err := mn.PlayerDist(z, i)
			if err != nil {
				t.Fatal(err)
			}
			sum := 0.0
			for v := 0; v < d.Size(); v++ {
				sum += d.P(v)
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Fatalf("z=%d i=%d: dist sums to %v", z, i, sum)
			}
		}
	}
	if _, err := NewMuN(1, 2); err == nil {
		t.Fatal("k=1 succeeded")
	}
	if _, err := NewMuN(3, 0); err == nil {
		t.Fatal("n=0 succeeded")
	}
}

func TestMuNSpecialPlayerForcedZero(t *testing.T) {
	mn, _ := NewMuN(3, 2)
	// aux z encodes (Z_1, Z_2) base 3 with Z_1 least significant.
	// z = 1 + 2*3 = 7 means Z_1 = 1, Z_2 = 2.
	d1, err := mn.PlayerDist(7, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Player 1's coordinate 0 (bit 0) must be 0: all values with bit0=1
	// have probability 0.
	for v := 0; v < 4; v++ {
		if v&1 == 1 && d1.P(v) != 0 {
			t.Fatalf("player 1 value %d has prob %v, want 0", v, d1.P(v))
		}
	}
	d2, err := mn.PlayerDist(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		if v>>1&1 == 1 && d2.P(v) != 0 {
			t.Fatalf("player 2 value %d has prob %v, want 0", v, d2.P(v))
		}
	}
}

func TestMuNSample(t *testing.T) {
	mn, _ := NewMuN(4, 10)
	src := rng.New(105)
	zs, inputs, err := mn.Sample(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(zs) != 10 || len(inputs) != 4 {
		t.Fatalf("dims: zs=%d inputs=%d", len(zs), len(inputs))
	}
	// Every coordinate's special player holds a zero there.
	for j, z := range zs {
		if inputs[z]>>uint(j)&1 != 0 {
			t.Fatalf("coordinate %d: special player %d has a one", j, z)
		}
	}
}

func TestLemma6Dist(t *testing.T) {
	d, err := NewLemma6Dist(5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(106)
	allOnes, oneZero := 0, 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		x, zeroAt := d.Sample(src)
		switch CountZeros(x) {
		case 0:
			if zeroAt != -1 {
				t.Fatal("all-ones sample reported a zero position")
			}
			allOnes++
		case 1:
			if x[zeroAt] != 0 {
				t.Fatal("reported zero position is not zero")
			}
			oneZero++
		default:
			t.Fatalf("sample with %d zeros", CountZeros(x))
		}
	}
	if math.Abs(float64(allOnes)/trials-0.2) > 0.01 {
		t.Fatalf("all-ones rate %v, want 0.2", float64(allOnes)/trials)
	}
	_ = oneZero

	// Exact probabilities.
	x := []int{1, 1, 1, 1, 1}
	p, _ := d.Prob(x)
	if math.Abs(p-0.2) > 1e-15 {
		t.Fatalf("Prob(1^k) = %v", p)
	}
	x[2] = 0
	p, _ = d.Prob(x)
	if math.Abs(p-0.8/5) > 1e-15 {
		t.Fatalf("Prob(one zero) = %v", p)
	}
	x[3] = 0
	p, _ = d.Prob(x)
	if p != 0 {
		t.Fatalf("Prob(two zeros) = %v, want 0", p)
	}

	if _, err := NewLemma6Dist(0, 0.2); err == nil {
		t.Fatal("k=0 succeeded")
	}
	if _, err := NewLemma6Dist(5, 0); err == nil {
		t.Fatal("εPrime=0 succeeded")
	}
	if _, err := NewLemma6Dist(5, 1); err == nil {
		t.Fatal("εPrime=1 succeeded")
	}
	if _, err := d.Prob([]int{1, 1}); err == nil {
		t.Fatal("short input succeeded")
	}
}

func TestProductPrior(t *testing.T) {
	b03, err := prob.Bernoulli(0.3)
	if err != nil {
		t.Fatal(err)
	}
	b07, err := prob.Bernoulli(0.7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewProductPrior(nil); err == nil {
		t.Fatal("empty product prior succeeded")
	}
	u3, _ := prob.Uniform(3)
	if _, err := NewProductPrior([]prob.Dist{b03, u3}); err == nil {
		t.Fatal("mismatched marginal supports succeeded")
	}
	prior, err := NewProductPrior([]prob.Dist{b03, b07})
	if err != nil {
		t.Fatal(err)
	}
	if prior.NumPlayers() != 2 || prior.InputSize() != 2 || prior.AuxSize() != 1 {
		t.Fatalf("shape: %d players, input %d, aux %d",
			prior.NumPlayers(), prior.InputSize(), prior.AuxSize())
	}
	if prior.AuxProb(0) != 1 || prior.AuxProb(1) != 0 {
		t.Fatal("aux probabilities wrong")
	}
	d, err := prior.PlayerDist(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.P(1)-0.7) > 1e-15 {
		t.Fatalf("player 1 marginal = %v", d.Probs())
	}
	if _, err := prior.PlayerDist(1, 0); err == nil {
		t.Fatal("nonzero aux succeeded")
	}
	if _, err := prior.PlayerDist(0, 2); err == nil {
		t.Fatal("out-of-range player succeeded")
	}
	src := rng.New(107)
	x := prior.Sample(src)
	if len(x) != 2 {
		t.Fatalf("sample length %d", len(x))
	}
}

func TestMuAccessors(t *testing.T) {
	m, _ := NewMu(5)
	if m.NumPlayers() != 5 || m.InputSize() != 2 || m.AuxSize() != 5 {
		t.Fatalf("accessors: %d %d %d", m.NumPlayers(), m.InputSize(), m.AuxSize())
	}
	if math.Abs(m.AuxProb(2)-0.2) > 1e-15 {
		t.Fatalf("AuxProb = %v", m.AuxProb(2))
	}
	if m.AuxProb(-1) != 0 || m.AuxProb(5) != 0 {
		t.Fatal("out-of-range AuxProb nonzero")
	}
	mn, _ := NewMuN(3, 2)
	if mn.NumPlayers() != 3 || mn.NumCoordinates() != 2 {
		t.Fatalf("MuN accessors: %d %d", mn.NumPlayers(), mn.NumCoordinates())
	}
	if mn.AuxProb(-1) != 0 || mn.AuxProb(9) != 0 {
		t.Fatal("MuN out-of-range AuxProb nonzero")
	}
	if math.Abs(mn.AuxProb(0)-1.0/9) > 1e-15 {
		t.Fatalf("MuN AuxProb = %v", mn.AuxProb(0))
	}
	d6, _ := NewLemma6Dist(4, 0.3)
	if d6.NumPlayers() != 4 || math.Abs(d6.EpsPrime()-0.3) > 1e-15 {
		t.Fatal("Lemma6Dist accessors wrong")
	}
	if _, err := mn.PlayerDist(-1, 0); err == nil {
		t.Fatal("MuN PlayerDist out-of-range succeeded")
	}
}

func TestMuNSampleRejectsHugeN(t *testing.T) {
	mn := &MuN{}
	_ = mn
	big, err := NewMuN(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	_ = big
	// n=16 is fine for Sample; the n>63 guard needs a direct construction,
	// which NewMuN already prevents via AuxSize overflow in practice, so
	// just confirm a normal sample works.
	src := rng.New(1)
	if _, _, err := big.Sample(src); err != nil {
		t.Fatal(err)
	}
}
