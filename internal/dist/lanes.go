package dist

// Lane-engine hooks: μ exposes its conditional structure to the 64-lane
// batch estimator, and the Lemma 6 distribution exposes an allocation-free
// sampler for the batched E6 trial loop. Both are structural — dist does
// not import the batch package; batch.LanePrior is satisfied by method
// shape, keeping the production dependency graph acyclic and lean.

import (
	"broadcastic/internal/prob"
	"broadcastic/internal/rng"
)

// LaneRows implements batch.LanePrior: μ's per-player conditionals
// collapse to two shared rows — row 0 is the special player's point mass
// on 0, row 1 the regular Bernoulli(1 − 1/k). These are the same cached
// prob.Dist values PlayerDist returns, so lane sampling sees the exact
// distributions of the scalar path.
func (m *Mu) LaneRows() []prob.Dist {
	return []prob.Dist{m.special, m.regular}
}

// LaneRowsOf implements batch.LanePrior: given Z = z, every player uses
// the regular row except the special player z.
func (m *Mu) LaneRowsOf(z int, dst []uint8) {
	for i := range dst {
		dst[i] = 1
	}
	if z >= 0 && z < len(dst) {
		dst[z] = 0
	}
}

// SampleZero draws only the zero position of a Sample draw: −1 for the
// all-ones input, else the uniformly random player receiving 0. It
// consumes the stream draw-for-draw identically to Sample — same
// Bernoulli(ε′) flip, same conditional Intn(k) — without allocating the
// input slice, which is all the word-parallel E6 evaluator needs: lane L
// of the packed inputs is all-ones except bit L cleared in word
// SampleZero(src), when non-negative.
func (d *Lemma6Dist) SampleZero(src *rng.Source) int {
	if src.Bernoulli(d.epsPrime) {
		return -1
	}
	return src.Intn(d.k)
}
