// Package dist implements the input distributions the paper's lower bounds
// are proved against.
//
// The central object is the Section 4.1 hard distribution μ for AND_k: pick
// a uniformly random special player Z ∈ [k], force X_Z = 0, and give every
// other player 0 independently with probability 1/k. Conditioned on Z the
// inputs are independent (condition (2) of Lemma 1) and every input in the
// support satisfies AND = 0 (condition (1)).
//
// The package also provides μ^n (the n-fold product used for DISJ via the
// direct-sum Lemma 1), the slices X_c of inputs with exactly c zeroes used
// by the Lemma 5 analysis, and the simple distribution of the Lemma 6
// Ω(k) communication bound.
//
// Types here structurally satisfy core.Prior so the information-cost engine
// can consume them without an import cycle.
package dist

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"broadcastic/internal/prob"
	"broadcastic/internal/rng"
)

// Mu is the hard distribution for AND_k from Section 4.1.
type Mu struct {
	k int
	// Cached per-player conditionals (prob.Dist is immutable, so sharing
	// is safe); PlayerDist sits on the hot path of the Monte-Carlo
	// information-cost estimators.
	special prob.Dist // point mass on 0, for the special player
	regular prob.Dist // Bernoulli(1 − 1/k), for everyone else
}

// NewMu returns μ for k players; k must be at least 2.
func NewMu(k int) (*Mu, error) {
	if k < 2 {
		return nil, fmt.Errorf("dist: μ requires k >= 2, got %d", k)
	}
	special, err := prob.Point(2, 0)
	if err != nil {
		return nil, err
	}
	regular, err := prob.Bernoulli(1 - 1/float64(k))
	if err != nil {
		return nil, err
	}
	return &Mu{k: k, special: special, regular: regular}, nil
}

// NumPlayers returns k.
func (m *Mu) NumPlayers() int { return m.k }

// InputSize returns 2: each player holds one bit.
func (m *Mu) InputSize() int { return 2 }

// AuxSize returns k: the auxiliary variable D is the special player Z.
func (m *Mu) AuxSize() int { return m.k }

// AuxProb returns Pr[Z = z] = 1/k.
func (m *Mu) AuxProb(z int) float64 {
	if z < 0 || z >= m.k {
		return 0
	}
	return 1 / float64(m.k)
}

// IRKey names the prior for the compiled-IR program cache (see
// internal/ir.Keyer): μ is fully determined by k.
func (m *Mu) IRKey() string { return "dist.mu/" + strconv.Itoa(m.k) }

// PlayerDist returns the distribution of X_i conditioned on Z = z:
// a point mass on 0 for the special player, Bernoulli(1 − 1/k) otherwise.
func (m *Mu) PlayerDist(z, player int) (prob.Dist, error) {
	if z < 0 || z >= m.k || player < 0 || player >= m.k {
		return prob.Dist{}, fmt.Errorf("dist: PlayerDist(z=%d, player=%d) outside [0,%d)", z, player, m.k)
	}
	if player == z {
		return m.special, nil
	}
	return m.regular, nil // P(X=1) = 1 - 1/k
}

// Sample draws (z, x) ~ μ. The returned x has one entry in {0,1} per player.
func (m *Mu) Sample(src *rng.Source) (z int, x []int) {
	z = src.Intn(m.k)
	x = make([]int, m.k)
	for i := range x {
		switch {
		case i == z:
			x[i] = 0
		case src.Bernoulli(1 / float64(m.k)):
			x[i] = 0
		default:
			x[i] = 1
		}
	}
	return z, x
}

// ProbGivenZ returns Pr[X = x | Z = z] under μ.
func (m *Mu) ProbGivenZ(x []int, z int) (float64, error) {
	if len(x) != m.k {
		return 0, fmt.Errorf("dist: input has %d entries, want %d", len(x), m.k)
	}
	if z < 0 || z >= m.k {
		return 0, fmt.Errorf("dist: z=%d outside [0,%d)", z, m.k)
	}
	p := 1.0
	for i, v := range x {
		if v != 0 && v != 1 {
			return 0, fmt.Errorf("dist: non-binary input x[%d]=%d", i, v)
		}
		if i == z {
			if v != 0 {
				return 0, nil
			}
			continue
		}
		if v == 0 {
			p *= 1 / float64(m.k)
		} else {
			p *= 1 - 1/float64(m.k)
		}
	}
	return p, nil
}

// Prob returns the marginal Pr[X = x] = (1/k) Σ_z Pr[X = x | Z = z].
func (m *Mu) Prob(x []int) (float64, error) {
	total := 0.0
	for z := 0; z < m.k; z++ {
		p, err := m.ProbGivenZ(x, z)
		if err != nil {
			return 0, err
		}
		total += p / float64(m.k)
	}
	return total, nil
}

// CountZeros returns |{i : x_i = 0}|, the slice index c of X_c.
func CountZeros(x []int) int {
	c := 0
	for _, v := range x {
		if v == 0 {
			c++
		}
	}
	return c
}

// ProbSlice returns Pr[X ∈ X_c] under μ: the probability that exactly c
// players receive zero. The special player always has zero, so the count is
// 1 + Binomial(k−1, 1/k).
func (m *Mu) ProbSlice(c int) (float64, error) {
	if c < 0 || c > m.k {
		return 0, fmt.Errorf("dist: slice count %d outside [0,%d]", c, m.k)
	}
	if c == 0 {
		return 0, nil // X always contains at least one zero under μ
	}
	binom, err := prob.BinomialPMF(m.k-1, 1/float64(m.k))
	if err != nil {
		return 0, err
	}
	return binom.P(c - 1), nil
}

// SampleFromSlice draws a uniform input from X_c (exactly c zeroes, the
// conditional of μ given the slice): by symmetry this is a uniformly random
// size-c zero set. Requires 1 <= c <= k.
func (m *Mu) SampleFromSlice(src *rng.Source, c int) ([]int, error) {
	if c < 1 || c > m.k {
		return nil, fmt.Errorf("dist: slice count %d outside [1,%d]", c, m.k)
	}
	zeroSet := src.SampleWithoutReplacement(m.k, c)
	x := make([]int, m.k)
	for i := range x {
		x[i] = 1
	}
	for _, i := range zeroSet {
		x[i] = 0
	}
	return x, nil
}

// MuN is the n-fold product distribution μ^n used for DISJ_{n,k} (Lemma 1):
// each coordinate j ∈ [n] is an independent draw from μ with its own
// auxiliary variable Z_j.
type MuN struct {
	mu *Mu
	n  int
}

// NewMuN returns μ^n over k players and n coordinates.
func NewMuN(k, n int) (*MuN, error) {
	mu, err := NewMu(k)
	if err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("dist: μ^n requires n >= 1, got %d", n)
	}
	return &MuN{mu: mu, n: n}, nil
}

// NumPlayers returns k.
func (m *MuN) NumPlayers() int { return m.mu.k }

// NumCoordinates returns n.
func (m *MuN) NumCoordinates() int { return m.n }

// InputSize returns 2^n: each player's input is an n-bit vector, encoded as
// an integer with coordinate j in bit j.
func (m *MuN) InputSize() int { return 1 << uint(m.n) }

// AuxSize returns k^n: the auxiliary variable is the vector (Z_1,...,Z_n),
// encoded in base k with Z_1 least significant.
func (m *MuN) AuxSize() int {
	s := 1
	for j := 0; j < m.n; j++ {
		s *= m.mu.k
	}
	return s
}

// AuxProb returns the uniform probability 1/k^n of each auxiliary vector.
func (m *MuN) AuxProb(z int) float64 {
	if z < 0 || z >= m.AuxSize() {
		return 0
	}
	return 1 / float64(m.AuxSize())
}

// IRKey names the prior for the compiled-IR program cache: μ^n is fully
// determined by (k, n).
func (m *MuN) IRKey() string {
	return "dist.mun/" + strconv.Itoa(m.mu.k) + "," + strconv.Itoa(m.n)
}

// PlayerDist returns the distribution of player i's n-bit input conditioned
// on the auxiliary vector z (base-k encoded). Coordinates are independent:
// coordinate j is forced to 0 when Z_j = i, else Bernoulli(1 − 1/k).
func (m *MuN) PlayerDist(z, player int) (prob.Dist, error) {
	if z < 0 || z >= m.AuxSize() || player < 0 || player >= m.mu.k {
		return prob.Dist{}, fmt.Errorf("dist: MuN PlayerDist(z=%d, player=%d) out of range", z, player)
	}
	k := m.mu.k
	// Per-coordinate probability that the bit is 1.
	pOne := make([]float64, m.n)
	zz := z
	for j := 0; j < m.n; j++ {
		zj := zz % k
		zz /= k
		if zj == player {
			pOne[j] = 0
		} else {
			pOne[j] = 1 - 1/float64(k)
		}
	}
	size := 1 << uint(m.n)
	p := make([]float64, size)
	for v := 0; v < size; v++ {
		pr := 1.0
		for j := 0; j < m.n; j++ {
			if v>>uint(j)&1 == 1 {
				pr *= pOne[j]
			} else {
				pr *= 1 - pOne[j]
			}
		}
		p[v] = pr
	}
	return prob.NewDist(p)
}

// Sample draws (zs, inputs) ~ μ^n: zs[j] is the special player of
// coordinate j, and inputs[i] is player i's n-bit vector with coordinate j
// in bit position j.
func (m *MuN) Sample(src *rng.Source) (zs []int, inputs []uint64, err error) {
	if m.n > 63 {
		return nil, nil, fmt.Errorf("dist: MuN.Sample supports n <= 63, got %d", m.n)
	}
	zs = make([]int, m.n)
	inputs = make([]uint64, m.mu.k)
	for j := 0; j < m.n; j++ {
		z, x := m.mu.Sample(src)
		zs[j] = z
		for i, v := range x {
			if v == 1 {
				inputs[i] |= 1 << uint(j)
			}
		}
	}
	return zs, inputs, nil
}

// Lemma6Dist is the input distribution from the proof of Lemma 6 (the Ω(k)
// communication bound): with probability εPrime all players receive 1;
// otherwise one uniformly random player receives 0 and the rest receive 1.
type Lemma6Dist struct {
	k        int
	epsPrime float64
}

// NewLemma6Dist validates parameters; εPrime must lie in (0, 1).
func NewLemma6Dist(k int, epsPrime float64) (*Lemma6Dist, error) {
	if k < 1 {
		return nil, fmt.Errorf("dist: Lemma6Dist requires k >= 1, got %d", k)
	}
	if epsPrime <= 0 || epsPrime >= 1 || math.IsNaN(epsPrime) {
		return nil, fmt.Errorf("dist: εPrime = %v outside (0,1)", epsPrime)
	}
	return &Lemma6Dist{k: k, epsPrime: epsPrime}, nil
}

// NumPlayers returns k.
func (d *Lemma6Dist) NumPlayers() int { return d.k }

// EpsPrime returns the all-ones probability ε′.
func (d *Lemma6Dist) EpsPrime() float64 { return d.epsPrime }

// Sample draws an input: all-ones with probability ε′, else a single
// uniformly random zero. The zero position is −1 for the all-ones input.
func (d *Lemma6Dist) Sample(src *rng.Source) (x []int, zeroAt int) {
	x = make([]int, d.k)
	for i := range x {
		x[i] = 1
	}
	if src.Bernoulli(d.epsPrime) {
		return x, -1
	}
	z := src.Intn(d.k)
	x[z] = 0
	return x, z
}

// Prob returns the probability of input x under the distribution.
func (d *Lemma6Dist) Prob(x []int) (float64, error) {
	if len(x) != d.k {
		return 0, fmt.Errorf("dist: input has %d entries, want %d", len(x), d.k)
	}
	zeros := CountZeros(x)
	switch zeros {
	case 0:
		return d.epsPrime, nil
	case 1:
		return (1 - d.epsPrime) / float64(d.k), nil
	default:
		return 0, nil
	}
}

// ProductPrior is a generic product distribution with a trivial auxiliary
// variable ("empty variable D", as in the Theorem 4 proof sketch): every
// player draws independently from its own marginal.
type ProductPrior struct {
	marginals []prob.Dist
}

// NewProductPrior builds a product prior from per-player marginals; all
// marginals must share a support size.
func NewProductPrior(marginals []prob.Dist) (*ProductPrior, error) {
	if len(marginals) == 0 {
		return nil, fmt.Errorf("dist: empty product prior")
	}
	size := marginals[0].Size()
	for i, m := range marginals {
		if m.Size() != size {
			return nil, fmt.Errorf("dist: marginal %d has support %d, want %d", i, m.Size(), size)
		}
	}
	out := make([]prob.Dist, len(marginals))
	copy(out, marginals)
	return &ProductPrior{marginals: out}, nil
}

// NumPlayers returns the number of players.
func (p *ProductPrior) NumPlayers() int { return len(p.marginals) }

// InputSize returns the per-player support size.
func (p *ProductPrior) InputSize() int { return p.marginals[0].Size() }

// AuxSize returns 1 (the empty auxiliary variable).
func (p *ProductPrior) AuxSize() int { return 1 }

// AuxProb returns 1 for z = 0.
func (p *ProductPrior) AuxProb(z int) float64 {
	if z == 0 {
		return 1
	}
	return 0
}

// PlayerDist returns the marginal of the given player (the auxiliary
// variable is vacuous).
func (p *ProductPrior) PlayerDist(z, player int) (prob.Dist, error) {
	if z != 0 {
		return prob.Dist{}, fmt.Errorf("dist: product prior has aux size 1, got z=%d", z)
	}
	if player < 0 || player >= len(p.marginals) {
		return prob.Dist{}, fmt.Errorf("dist: player %d outside [0,%d)", player, len(p.marginals))
	}
	return p.marginals[player], nil
}

// IRKey names the prior for the compiled-IR program cache: the marginals
// enter as their exact float64 bit patterns, so two product priors share
// a program only when every probability is bit-identical.
func (p *ProductPrior) IRKey() string {
	var b strings.Builder
	b.WriteString("dist.prod/")
	for i, m := range p.marginals {
		if i > 0 {
			b.WriteByte(';')
		}
		for v := 0; v < m.Size(); v++ {
			if v > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatUint(math.Float64bits(m.P(v)), 16))
		}
	}
	return b.String()
}

// Sample draws one input per player.
func (p *ProductPrior) Sample(src *rng.Source) []int {
	x := make([]int, len(p.marginals))
	for i, m := range p.marginals {
		x[i] = m.Sample(src)
	}
	return x
}
