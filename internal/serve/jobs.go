package serve

import (
	"encoding/json"
	"errors"
	"net/http"

	"broadcastic/internal/jobs"
	"broadcastic/internal/telemetry/causal"
)

// submitRequest is the POST /jobs body: a JobSpec plus an optional tenant
// (the X-Tenant header, when present, wins over the body field).
type submitRequest struct {
	Tenant string `json:"tenant,omitempty"`
	jobs.JobSpec
}

// AttachJobs mounts the job API onto mux:
//
//	POST   /jobs      — submit a spec; 202 queued, 200 on a cache hit,
//	                    400 invalid, 429 (+ Retry-After) on queue-full,
//	                    503 when the service is shutting down.
//	GET    /jobs      — list every known job, submission order.
//	GET    /jobs/{id} — one job's snapshot; 404 unknown.
//	DELETE /jobs/{id} — cancel; the snapshot reflects the new state.
//
// The tenant comes from the X-Tenant header or the body's "tenant" field,
// defaulting to "default". Responses are the jobs.Job JSON snapshot; when
// the service has a flight recorder, every submission is admitted under a
// fresh trace whose ID the snapshot carries as "traceId".
func AttachJobs(mux *http.ServeMux, svc *jobs.Service) {
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var req submitRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		tenant := r.Header.Get("X-Tenant")
		if tenant == "" {
			tenant = req.Tenant
		}
		if tenant == "" {
			tenant = "default"
		}
		// Admission is where the causal root is minted: everything that
		// happens to this submission — rejection included — records under
		// the trace born here.
		var cause causal.Context
		if fr := svc.Flight(); fr != nil {
			cause = fr.StartTrace(causal.JobAdmission,
				causal.String("tenant", tenant),
				causal.String("experiment", req.Experiment))
		}
		job, err := svc.SubmitTraced(tenant, req.JobSpec, cause)
		switch {
		case err == nil:
		case errors.Is(err, jobs.ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, err.Error())
			return
		case errors.Is(err, jobs.ErrClosed):
			httpError(w, http.StatusServiceUnavailable, err.Error())
			return
		default:
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		status := http.StatusAccepted
		if job.CacheHit {
			status = http.StatusOK
		}
		writeJob(w, status, job)
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(svc.List())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := svc.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown job")
			return
		}
		writeJob(w, http.StatusOK, job)
	})
	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := svc.Cancel(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "unknown job")
			return
		}
		writeJob(w, http.StatusOK, job)
	})
}

func writeJob(w http.ResponseWriter, status int, job jobs.Job) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(job)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
