// Package serve is the live observability plane: a zero-dependency HTTP
// surface exposing the process's telemetry while experiments run.
//
//   - /metrics — Prometheus text exposition of a telemetry.Collector
//     (internal/telemetry/promtext), scrapeable by any Prometheus-
//     compatible agent.
//   - /healthz — liveness JSON with the binary's build identity.
//   - /runs — per-run progress (cells done/total, recorded bits, elapsed
//     and ETA) as an NDJSON snapshot; with ?follow=1 or an SSE Accept
//     header, the snapshot is followed by a live stream of updates.
//   - /debug/pprof/ — the standard runtime profiles.
//
// The plane strictly observes: handlers read Collector snapshots and
// Broker state, never experiment internals, so serving cannot perturb any
// deterministic output. The e2e tests pin that tables rendered with the
// plane attached are byte-identical to tables rendered without it.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"broadcastic/internal/buildinfo"
	"broadcastic/internal/telemetry"
	"broadcastic/internal/telemetry/promtext"
)

// RunProgress is one run's live state as published to /runs. A run is one
// experiment execution (e.g. "E7" within run "all-seed1"); every update
// carries the full state, so consumers need no history to render it.
type RunProgress struct {
	// RunID identifies the enclosing invocation (stable across reruns of
	// the same configuration, e.g. "E7-seed1").
	RunID string `json:"runId"`
	// Experiment is the experiment ID ("E1".."E20").
	Experiment string `json:"experiment"`
	// CellsDone and CellsTotal count completed sweep cells. Updates may be
	// observed slightly out of order (the hooks fire from pool workers);
	// CellsDone is monotone at the source.
	CellsDone  int `json:"cellsDone"`
	CellsTotal int `json:"cellsTotal"`
	// Bits is the cumulative recorded communication (blackboard + wire) at
	// publish time, from the attached Collector.
	Bits int64 `json:"bits"`
	// ElapsedMs is wall time since the run started; EtaMs linearly
	// extrapolates the remaining cells (0 until the first cell lands).
	ElapsedMs int64 `json:"elapsedMs"`
	EtaMs     int64 `json:"etaMs"`
	// Done marks the final update of a run.
	Done bool `json:"done"`
}

func (p RunProgress) key() string { return p.RunID + "\x00" + p.Experiment }

// Broker fans run-progress updates out to any number of /runs streams
// while remembering the latest state per run for snapshots. All methods
// are safe for concurrent use.
type Broker struct {
	mu     sync.Mutex
	latest map[string]RunProgress
	order  []string // keys in first-publish order, for stable snapshots
	subs   map[chan RunProgress]struct{}
	rec    telemetry.Recorder // counts dropped updates (nil ok)
}

// NewBroker returns an empty broker.
func NewBroker() *Broker {
	return NewBrokerRecorded(nil)
}

// NewBrokerRecorded returns an empty broker that counts updates dropped
// under subscriber backpressure on rec as serve.runs.dropped_updates.
func NewBrokerRecorded(rec telemetry.Recorder) *Broker {
	return &Broker{
		latest: make(map[string]RunProgress),
		subs:   make(map[chan RunProgress]struct{}),
		rec:    rec,
	}
}

// Publish records p as its run's latest state and forwards it to every
// subscriber. Slow subscribers lose intermediate updates rather than
// blocking the publisher: each update carries full state, so the next one
// heals the gap. Every such drop increments serve.runs.dropped_updates on
// the broker's recorder, making stream loss observable on /metrics.
func (b *Broker) Publish(p RunProgress) {
	dropped := int64(0)
	b.mu.Lock()
	key := p.key()
	if _, seen := b.latest[key]; !seen {
		b.order = append(b.order, key)
	}
	b.latest[key] = p
	for ch := range b.subs {
		select {
		case ch <- p:
		default:
			dropped++
		}
	}
	b.mu.Unlock()
	if dropped > 0 {
		telemetry.Count(b.rec, telemetry.ServeRunsDroppedUpdates, dropped)
	}
}

// Snapshot returns the latest state of every run, in first-publish order.
func (b *Broker) Snapshot() []RunProgress {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]RunProgress, 0, len(b.order))
	for _, key := range b.order {
		out = append(out, b.latest[key])
	}
	return out
}

// Subscribe registers a new stream. The returned channel receives every
// subsequent Publish (minus drops under backpressure); cancel
// unregisters it and closes the channel.
func (b *Broker) Subscribe() (<-chan RunProgress, func()) {
	ch := make(chan RunProgress, 64)
	b.mu.Lock()
	b.subs[ch] = struct{}{}
	b.mu.Unlock()
	cancel := func() {
		b.mu.Lock()
		if _, ok := b.subs[ch]; ok {
			delete(b.subs, ch)
			close(ch)
		}
		b.mu.Unlock()
	}
	return ch, cancel
}

// bitsCounter is the subset of Collector the progress hook reads.
type bitsCounter interface {
	Counter(name string) int64
}

// ProgressFunc adapts the broker to sim.Config.Progress for one
// experiment run: each hook call publishes cells done/total, the
// collector's cumulative bits, elapsed wall time and a linear ETA. col
// may be nil (bits stay 0). The final cell publishes Done=true.
func (b *Broker) ProgressFunc(runID, experiment string, col *telemetry.Collector) func(done, total int) {
	start := time.Now()
	// A nil *Collector must behave like "no collector", not a panic.
	var bits bitsCounter
	if col != nil {
		bits = col
	}
	return func(done, total int) {
		p := RunProgress{
			RunID:      runID,
			Experiment: experiment,
			CellsDone:  done,
			CellsTotal: total,
			ElapsedMs:  time.Since(start).Milliseconds(),
			Done:       done >= total,
		}
		if bits != nil {
			p.Bits = bits.Counter(telemetry.BlackboardBits) + bits.Counter(telemetry.NetrunWireBits)
		}
		if done > 0 && done < total {
			p.EtaMs = p.ElapsedMs * int64(total-done) / int64(done)
		}
		b.Publish(p)
	}
}

// Health is the process's readiness state, shared between /healthz and the
// lifecycle code that flips it: not ready until the job fleet is up, not
// ready again once draining begins at shutdown. The zero value is "not
// ready"; a nil *Health means readiness is not tracked and /healthz always
// reports ready (the standalone, no-jobs configurations).
type Health struct {
	ready atomic.Bool
}

// SetReady flips the readiness state. Nil-safe.
func (h *Health) SetReady(ready bool) {
	if h != nil {
		h.ready.Store(ready)
	}
}

// Ready reports readiness; a nil *Health is always ready.
func (h *Health) Ready() bool { return h == nil || h.ready.Load() }

// NewMux builds the observability mux over a collector and a broker.
// Either may be nil: nil collector serves an empty exposition, nil broker
// serves an empty snapshot and no streams. Readiness is not tracked —
// /healthz always reports ready; daemons that manage a job fleet use
// NewMuxHealth.
func NewMux(col *telemetry.Collector, broker *Broker) *http.ServeMux {
	return NewMuxHealth(col, broker, nil)
}

// NewMuxHealth is NewMux with liveness/readiness split on /healthz: the
// endpoint returns 200 {"status":"ok",...,"ready":true} while health
// reports ready, and 503 {"status":"unavailable","ready":false,...} during
// startup and shutdown drain — so orchestrators stop routing before the
// fleet stops accepting. ?live=1 is the pure liveness probe: 200 whenever
// the process can serve HTTP, whatever the readiness state.
func NewMuxHealth(col *telemetry.Collector, broker *Broker, health *Health) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if col == nil {
			return
		}
		if _, err := promtext.WriteCollector(w, col); err != nil {
			// Headers are gone; nothing to do but stop writing.
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		live := r.URL.Query().Get("live") == "1"
		ready := health.Ready()
		status := "ok"
		if !ready && !live {
			status = "unavailable"
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		info := buildinfo.Resolve()
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status":  status,
			"ready":   ready,
			"module":  info.Path,
			"version": info.Version,
			"go":      info.GoVersion,
			"rev":     info.Revision,
		})
	})
	mux.HandleFunc("/runs", func(w http.ResponseWriter, r *http.Request) {
		serveRuns(w, r, broker)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// wantsSSE reports whether the client asked for a server-sent-events
// stream (Accept header) rather than NDJSON.
func wantsSSE(r *http.Request) bool {
	for _, accept := range r.Header.Values("Accept") {
		for _, part := range strings.Split(accept, ",") {
			if mt, _, _ := strings.Cut(part, ";"); strings.TrimSpace(mt) == "text/event-stream" {
				return true
			}
		}
	}
	return false
}

// serveRuns writes the current snapshot and, when following, streams
// subsequent updates until the client disconnects. NDJSON by default; SSE
// when the Accept header asks for text/event-stream.
func serveRuns(w http.ResponseWriter, r *http.Request, broker *Broker) {
	sse := wantsSSE(r)
	follow := sse || r.URL.Query().Get("follow") == "1"
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	flusher, _ := w.(http.Flusher)
	emit := func(p RunProgress) error {
		data, err := json.Marshal(p)
		if err != nil {
			return err
		}
		if sse {
			_, err = fmt.Fprintf(w, "data: %s\n\n", data)
		} else {
			_, err = fmt.Fprintf(w, "%s\n", data)
		}
		if err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}

	// Subscribe before snapshotting so no update published in between is
	// lost; duplicates with the snapshot are harmless (full state).
	var updates <-chan RunProgress
	var cancel func()
	if broker != nil {
		if follow {
			updates, cancel = broker.Subscribe()
			defer cancel()
		}
		for _, p := range broker.Snapshot() {
			if err := emit(p); err != nil {
				return
			}
		}
	}
	if !follow {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case p, ok := <-updates:
			if !ok {
				return
			}
			if err := emit(p); err != nil {
				return
			}
		}
	}
}

// Server runs the observability mux on a TCP listener.
type Server struct {
	http   *http.Server
	ln     net.Listener
	done   chan error
	cancel context.CancelFunc // ends the base context, unblocking streams
}

// Start listens on addr (e.g. "127.0.0.1:8344"; ":0" picks a free port)
// and serves mux in the background. Addr() reports the bound address.
func Start(addr string, mux http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	// Request contexts derive from this base context, so canceling it at
	// shutdown ends long-lived /runs?follow=1 streams that would otherwise
	// hold http.Server.Shutdown hostage until the client hung up.
	baseCtx, cancel := context.WithCancel(context.Background())
	s := &Server{
		http: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 10 * time.Second,
			BaseContext:       func(net.Listener) context.Context { return baseCtx },
		},
		ln:     ln,
		done:   make(chan error, 1),
		cancel: cancel,
	}
	go func() {
		err := s.http.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		s.done <- err
	}()
	return s, nil
}

// Addr returns the listener's bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown stops accepting connections, signals in-flight streams to end
// via their request contexts, waits for handlers up to ctx's deadline
// (force-closing connections if it expires), and returns the serve loop's
// error, if any.
func (s *Server) Shutdown(ctx context.Context) error {
	s.cancel()
	if err := s.http.Shutdown(ctx); err != nil {
		// Deadline hit with handlers still running: sever their
		// connections rather than leaking them.
		_ = s.http.Close()
		return err
	}
	return <-s.done
}

// SortRunIDs orders progress records by run then experiment — handy for
// tests and table-of-runs rendering; Snapshot order is publish order.
func SortRunIDs(ps []RunProgress) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].RunID != ps[j].RunID {
			return ps[i].RunID < ps[j].RunID
		}
		return ps[i].Experiment < ps[j].Experiment
	})
}
