package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"broadcastic/internal/sim"
	"broadcastic/internal/telemetry"
	"broadcastic/internal/telemetry/promtext"
	"broadcastic/internal/telemetry/tracelog"
)

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestMetricsEndpointMatchesCollector(t *testing.T) {
	col := telemetry.NewCollector()
	col.Count("blackboard.bits", 1234)
	col.Count("netrun.link.0.wire_bits", 500)
	col.Observe("sim.cell_ns", 2048)
	ts := httptest.NewServer(NewMux(col, NewBroker()))
	defer ts.Close()

	code, body, hdr := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	// The endpoint is promtext.WriteCollector verbatim.
	var want bytes.Buffer
	if _, err := promtext.WriteCollector(&want, col); err != nil {
		t.Fatal(err)
	}
	if body != want.String() {
		t.Errorf("/metrics diverges from promtext.WriteCollector:\n%s\n---\n%s", body, want.String())
	}
	for _, sample := range []string{"blackboard_bits 1234", "netrun_link_0_wire_bits 500"} {
		if !strings.Contains(body, sample+"\n") {
			t.Errorf("/metrics missing sample %q:\n%s", sample, body)
		}
	}
}

func TestHealthz(t *testing.T) {
	ts := httptest.NewServer(NewMux(nil, nil))
	defer ts.Close()
	code, body, hdr := get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("GET /healthz = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var h map[string]any
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz is not JSON: %v", err)
	}
	if h["status"] != "ok" {
		t.Errorf("status = %v", h["status"])
	}
	if g, _ := h["go"].(string); g == "" {
		t.Error("healthz carries no Go version")
	}
}

func TestPprofIndex(t *testing.T) {
	ts := httptest.NewServer(NewMux(nil, nil))
	defer ts.Close()
	code, body, _ := get(t, ts.URL+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ = %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Error("pprof index lists no profiles")
	}
}

func TestBrokerSnapshotAndSubscribe(t *testing.T) {
	b := NewBroker()
	b.Publish(RunProgress{RunID: "r1", Experiment: "E1", CellsDone: 1, CellsTotal: 2})
	ch, cancel := b.Subscribe()
	defer cancel()
	b.Publish(RunProgress{RunID: "r1", Experiment: "E1", CellsDone: 2, CellsTotal: 2, Done: true})
	b.Publish(RunProgress{RunID: "r1", Experiment: "E2", CellsDone: 1, CellsTotal: 5})

	snap := b.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d runs, want 2", len(snap))
	}
	// First-publish order, latest state.
	if snap[0].Experiment != "E1" || snap[0].CellsDone != 2 || !snap[0].Done {
		t.Errorf("snapshot[0] = %+v", snap[0])
	}
	if snap[1].Experiment != "E2" {
		t.Errorf("snapshot[1] = %+v", snap[1])
	}

	got := []RunProgress{<-ch, <-ch}
	if got[0].CellsDone != 2 || got[1].Experiment != "E2" {
		t.Errorf("subscriber saw %+v", got)
	}
	cancel()
	if _, ok := <-ch; ok {
		t.Error("channel still open after cancel")
	}
	cancel() // idempotent
}

func TestBrokerSlowSubscriberDoesNotBlock(t *testing.T) {
	b := NewBroker()
	_, cancel := b.Subscribe() // never drained
	defer cancel()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			b.Publish(RunProgress{RunID: "r", Experiment: "E1", CellsDone: i})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publisher blocked on a slow subscriber")
	}
}

func TestBrokerDroppedUpdatesCounter(t *testing.T) {
	col := telemetry.NewCollector()
	b := NewBrokerRecorded(col)
	ch, cancel := b.Subscribe() // buffered at 64, never drained
	defer cancel()
	const total = 100
	for i := 0; i < total; i++ {
		b.Publish(RunProgress{RunID: "r", Experiment: "E1", CellsDone: i})
	}
	want := int64(total - cap(ch))
	if got := col.Counter(telemetry.ServeRunsDroppedUpdates); got != want {
		t.Errorf("dropped_updates = %d, want %d", got, want)
	}
	// A drained subscriber drops nothing further.
	for range cap(ch) {
		<-ch
	}
	before := col.Counter(telemetry.ServeRunsDroppedUpdates)
	b.Publish(RunProgress{RunID: "r", Experiment: "E1", CellsDone: total})
	if got := col.Counter(telemetry.ServeRunsDroppedUpdates); got != before {
		t.Errorf("drained subscriber still dropped: %d -> %d", before, got)
	}
	// The unrecorded constructor must stay nil-safe.
	b2 := NewBroker()
	_, cancel2 := b2.Subscribe()
	defer cancel2()
	for i := 0; i < total; i++ {
		b2.Publish(RunProgress{RunID: "r", Experiment: "E1", CellsDone: i})
	}
}

func TestProgressFunc(t *testing.T) {
	b := NewBroker()
	col := telemetry.NewCollector()
	col.Count(telemetry.BlackboardBits, 100)
	col.Count(telemetry.NetrunWireBits, 40)
	hook := b.ProgressFunc("E9-seed1", "E9", col)
	hook(1, 4)
	hook(4, 4)
	snap := b.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d entries", len(snap))
	}
	p := snap[0]
	if p.RunID != "E9-seed1" || p.Experiment != "E9" {
		t.Errorf("identity = %q/%q", p.RunID, p.Experiment)
	}
	if !p.Done || p.CellsDone != 4 || p.CellsTotal != 4 {
		t.Errorf("final update = %+v", p)
	}
	if p.Bits != 140 {
		t.Errorf("bits = %d, want 140", p.Bits)
	}
	if p.EtaMs != 0 {
		t.Errorf("done run has eta %d", p.EtaMs)
	}
	// Nil collector must not panic and reports zero bits.
	b2 := NewBroker()
	b2.ProgressFunc("x", "E1", nil)(1, 2)
	if got := b2.Snapshot()[0].Bits; got != 0 {
		t.Errorf("nil-collector bits = %d", got)
	}
}

func TestRunsSnapshotNDJSON(t *testing.T) {
	b := NewBroker()
	b.Publish(RunProgress{RunID: "r1", Experiment: "E1", CellsDone: 2, CellsTotal: 2, Done: true})
	ts := httptest.NewServer(NewMux(nil, b))
	defer ts.Close()
	code, body, hdr := get(t, ts.URL+"/runs")
	if code != http.StatusOK {
		t.Fatalf("GET /runs = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	var p RunProgress
	if err := json.Unmarshal([]byte(strings.TrimSpace(body)), &p); err != nil {
		t.Fatalf("snapshot line is not JSON: %v (%q)", err, body)
	}
	if p.RunID != "r1" || !p.Done {
		t.Errorf("snapshot = %+v", p)
	}
}

func TestRunsFollowStreamsUpdates(t *testing.T) {
	b := NewBroker()
	b.Publish(RunProgress{RunID: "r1", Experiment: "E1", CellsDone: 1, CellsTotal: 3})
	ts := httptest.NewServer(NewMux(nil, b))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/runs?follow=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)

	readLine := func() RunProgress {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("stream ended early: %v", sc.Err())
		}
		var p RunProgress
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			t.Fatalf("stream line is not JSON: %v (%q)", err, sc.Text())
		}
		return p
	}

	if p := readLine(); p.CellsDone != 1 {
		t.Errorf("snapshot line = %+v", p)
	}
	b.Publish(RunProgress{RunID: "r1", Experiment: "E1", CellsDone: 3, CellsTotal: 3, Done: true})
	if p := readLine(); p.CellsDone != 3 || !p.Done {
		t.Errorf("streamed update = %+v", p)
	}
}

func TestRunsSSE(t *testing.T) {
	b := NewBroker()
	b.Publish(RunProgress{RunID: "r1", Experiment: "E1", CellsDone: 1, CellsTotal: 1, Done: true})
	ts := httptest.NewServer(NewMux(nil, b))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/runs", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no SSE frame: %v", sc.Err())
	}
	line := sc.Text()
	if !strings.HasPrefix(line, "data: ") {
		t.Fatalf("SSE frame = %q", line)
	}
	var p RunProgress
	if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &p); err != nil {
		t.Fatalf("SSE payload is not JSON: %v", err)
	}
	if p.RunID != "r1" {
		t.Errorf("payload = %+v", p)
	}
}

func TestServerStartShutdown(t *testing.T) {
	srv, err := Start("127.0.0.1:0", NewMux(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	code, _, _ := get(t, "http://"+srv.Addr()+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz over real listener = %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestShutdownEndsFollowStream pins graceful shutdown with a live
// /runs?follow=1 subscriber mid-stream: Shutdown must end the stream and
// return promptly (the handler's request context derives from the
// server's base context), leaving no serveRuns goroutine behind.
func TestShutdownEndsFollowStream(t *testing.T) {
	broker := NewBroker()
	broker.Publish(RunProgress{RunID: "r1", Experiment: "E1", CellsDone: 1, CellsTotal: 3})
	srv, err := Start("127.0.0.1:0", NewMux(nil, broker))
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()

	client := &http.Client{Transport: &http.Transport{}}
	resp, err := client.Get("http://" + srv.Addr() + "/runs?follow=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() { // snapshot line: the stream is live
		t.Fatalf("no snapshot line: %v", sc.Err())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown with live stream: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("shutdown took %v; the stream held it hostage", elapsed)
	}
	// The client's stream ends rather than hanging.
	for sc.Scan() {
	}
	client.CloseIdleConnections()

	// No leaked handler goroutine: the count settles back to the
	// pre-connection baseline (with slack for runtime/test goroutines).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	t.Fatalf("goroutines: %d, baseline %d; stacks:\n%s",
		runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
}

// TestObservedExperimentEndToEnd is the acceptance pin for the tentpole
// invariant: an experiment run with the full observability plane attached
// — shared Collector, Chrome-trace sink, progress hook, live HTTP server
// — renders a table byte-identical to a bare run, and the /metrics
// exposition agrees exactly with the final Collector snapshot
// (blackboard_bits and every netrun_link_*_wire_bits series included).
func TestObservedExperimentEndToEnd(t *testing.T) {
	exps := sim.Experiments()
	var e20 sim.Experiment
	for _, e := range exps {
		if e.ID == "E20" {
			e20 = e
		}
	}
	if e20.Run == nil {
		t.Fatal("E20 not in registry")
	}
	base := sim.Config{Seed: 7, Scale: sim.Quick}

	// Reference: nothing attached.
	refTbl, err := e20.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	var ref bytes.Buffer
	if err := refTbl.Render(&ref); err != nil {
		t.Fatal(err)
	}

	// Observed: collector + trace sink + progress hook + live server.
	col := telemetry.NewCollector()
	broker := NewBroker()
	ts := httptest.NewServer(NewMux(col, broker))
	defer ts.Close()
	sink := tracelog.New("E20-seed7", col)
	cfg := base
	cfg.Recorder = sink
	cfg.Progress = broker.ProgressFunc("E20-seed7", "E20", col)
	obsTbl, err := e20.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var obs bytes.Buffer
	if err := obsTbl.Render(&obs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref.Bytes(), obs.Bytes()) {
		t.Fatalf("observed run diverged from bare run:\n%s\n---\n%s", ref.Bytes(), obs.Bytes())
	}

	// /metrics must agree exactly with the final collector state.
	_, body, _ := get(t, ts.URL+"/metrics")
	sampleValue := func(name string) (float64, bool) {
		for _, line := range strings.Split(body, "\n") {
			if rest, ok := strings.CutPrefix(line, name+" "); ok {
				var v float64
				if _, err := fmt.Sscanf(rest, "%g", &v); err == nil {
					return v, true
				}
			}
		}
		return 0, false
	}
	ex := col.Export()
	checked := 0
	for _, c := range ex.Counters {
		name := promtext.SanitizeName(c.Name)
		if name != "blackboard_bits" &&
			!(strings.HasPrefix(name, "netrun_link_") && strings.HasSuffix(name, "_wire_bits")) {
			continue
		}
		got, ok := sampleValue(name)
		if !ok {
			t.Errorf("/metrics has no %s sample", name)
			continue
		}
		if got != float64(c.Value) {
			t.Errorf("%s = %g on /metrics, collector has %d", name, got, c.Value)
		}
		checked++
	}
	if checked < 2 {
		t.Fatalf("only %d bit series checked; expected blackboard_bits plus per-link wire bits", checked)
	}

	// The progress stream saw the run to completion.
	snap := broker.Snapshot()
	if len(snap) != 1 || !snap[0].Done || snap[0].CellsDone != snap[0].CellsTotal {
		t.Fatalf("progress snapshot = %+v", snap)
	}
	if snap[0].Bits == 0 {
		t.Error("progress reported zero bits for an instrumented netrun experiment")
	}

	// And the trace is parseable with events on it.
	var traceBuf bytes.Buffer
	if _, err := sink.WriteTo(&traceBuf); err != nil {
		t.Fatal(err)
	}
	var tr tracelog.Trace
	if err := json.Unmarshal(traceBuf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Error("trace recorded no events")
	}
}
