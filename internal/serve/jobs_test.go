package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"broadcastic/internal/jobs"
	"broadcastic/internal/telemetry"
)

func postJob(t *testing.T, url, tenant, body string) (int, jobs.Job, http.Header) {
	t.Helper()
	req, err := http.NewRequest("POST", url+"/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var j jobs.Job
	_ = json.NewDecoder(resp.Body).Decode(&j)
	return resp.StatusCode, j, resp.Header
}

func pollDone(t *testing.T, url, id string) jobs.Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		code, body, _ := get(t, url+"/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET /jobs/%s = %d", id, code)
		}
		var j jobs.Job
		if err := json.Unmarshal([]byte(body), &j); err != nil {
			t.Fatalf("job body not JSON: %v (%q)", err, body)
		}
		switch j.State {
		case jobs.Done:
			return j
		case jobs.Failed, jobs.Canceled:
			t.Fatalf("job %s ended %s: %s", id, j.State, j.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return jobs.Job{}
}

// TestJobsHTTPDeterministicCacheHit is the HTTP-level acceptance pin: the
// same spec submitted twice returns byte-identical results, the second
// time synchronously from the cache (200 vs 202, cacheHit set), with the
// hit visible on /metrics.
func TestJobsHTTPDeterministicCacheHit(t *testing.T) {
	col := telemetry.NewCollector()
	svc := jobs.New(jobs.Options{
		Workers:  2,
		Cache:    jobs.NewCache(16, 0, "", col),
		Recorder: col,
	})
	defer svc.Close()
	mux := NewMux(col, NewBroker())
	AttachJobs(mux, svc)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	spec := `{"experiment":"E10","seed":3,"scale":"quick"}`
	code, first, _ := postJob(t, ts.URL, "", spec)
	if code != http.StatusAccepted {
		t.Fatalf("first POST /jobs = %d, want 202", code)
	}
	if first.Tenant != "default" {
		t.Errorf("tenant defaulted to %q", first.Tenant)
	}
	firstDone := pollDone(t, ts.URL, first.ID)
	if firstDone.CacheHit {
		t.Error("first run claims a cache hit")
	}
	if firstDone.Result == "" {
		t.Fatal("first run has no result")
	}

	code, second, _ := postJob(t, ts.URL, "", spec)
	if code != http.StatusOK {
		t.Fatalf("second POST /jobs = %d, want 200 (cache hit)", code)
	}
	if !second.CacheHit || second.State != jobs.Done {
		t.Fatalf("second submission = %+v, want immediate cache hit", second)
	}
	if second.Result != firstDone.Result {
		t.Fatalf("cached result diverges from computed result:\n%s\n---\n%s",
			second.Result, firstDone.Result)
	}
	if got := col.Counter(telemetry.JobsCacheHits); got != 1 {
		t.Errorf("cache hit counter = %d, want 1", got)
	}
	// The hit is scrapeable.
	_, body, _ := get(t, ts.URL+"/metrics")
	if !strings.Contains(body, "jobs_cache_hits 1\n") {
		t.Errorf("/metrics missing jobs_cache_hits sample:\n%s", body)
	}
}

// TestJobsHTTPBackpressure pins the 429 mapping: a tenant at queue cap is
// rejected with Retry-After while another tenant's submission still lands.
func TestJobsHTTPBackpressure(t *testing.T) {
	release := make(chan struct{})
	svc := jobs.New(jobs.Options{
		Workers:  1,
		QueueCap: 1,
		Run: func(spec jobs.JobSpec, rc jobs.RunContext) ([]byte, error) {
			<-release
			return []byte("x"), nil
		},
	})
	defer func() {
		close(release)
		svc.Close()
	}()
	mux := http.NewServeMux()
	AttachJobs(mux, svc)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	// Fill: one job on the worker, one queued (cap 1). Distinct seeds keep
	// the specs distinct; there is no cache configured anyway.
	for seed := 1; seed <= 2; seed++ {
		code, _, _ := postJob(t, ts.URL, "loud",
			fmt.Sprintf(`{"experiment":"E10","seed":%d,"scale":"quick"}`, seed))
		if code != http.StatusAccepted {
			t.Fatalf("fill POST %d = %d", seed, code)
		}
		if seed == 1 {
			// Let the worker claim job 1 so job 2 is the sole queued entry.
			waitDepth(t, svc, "loud", 0, 1)
		}
	}
	code, rejected, hdr := postJob(t, ts.URL, "loud", `{"experiment":"E10","seed":9,"scale":"quick"}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-cap POST = %d (%+v), want 429", code, rejected)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After hint")
	}
	code, _, _ = postJob(t, ts.URL, "quiet", `{"experiment":"E10","seed":9,"scale":"quick"}`)
	if code != http.StatusAccepted {
		t.Fatalf("other tenant POST = %d, want 202 (per-tenant isolation)", code)
	}
}

// waitDepth blocks until the tenant's queue depth reaches min..max.
func waitDepth(t *testing.T, svc *jobs.Service, tenant string, min, max int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if d := svc.QueueDepth(tenant); d >= min && d <= max {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue depth for %q stuck at %d", tenant, svc.QueueDepth(tenant))
}

func TestJobsHTTPValidationAndLookup(t *testing.T) {
	svc := jobs.New(jobs.Options{Workers: 1})
	defer svc.Close()
	mux := http.NewServeMux()
	AttachJobs(mux, svc)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	for _, body := range []string{
		`{"experiment":"E99","scale":"quick"}`, // unknown experiment
		`{"experiment":"E1"}`,                  // missing scale
		`not json`,
		`{"experiment":"E1","scale":"quick","bogus":1}`, // unknown field
	} {
		code, _, _ := postJob(t, ts.URL, "", body)
		if code != http.StatusBadRequest {
			t.Errorf("POST %q = %d, want 400", body, code)
		}
	}
	code, body, _ := get(t, ts.URL+"/jobs/j999999")
	if code != http.StatusNotFound {
		t.Errorf("GET unknown job = %d, want 404", code)
	}
	if !strings.Contains(body, "unknown job") {
		t.Errorf("404 body = %q", body)
	}
	req, _ := http.NewRequest("DELETE", ts.URL+"/jobs/j999999", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown job = %d, want 404", resp.StatusCode)
	}
}

func TestJobsHTTPListAndCancel(t *testing.T) {
	release := make(chan struct{})
	svc := jobs.New(jobs.Options{
		Workers: 1,
		Run: func(spec jobs.JobSpec, rc jobs.RunContext) ([]byte, error) {
			<-release
			return []byte("x"), nil
		},
	})
	defer func() {
		close(release)
		svc.Close()
	}()
	mux := http.NewServeMux()
	AttachJobs(mux, svc)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	// Two jobs: one claims the worker, the second stays queued.
	_, running, _ := postJob(t, ts.URL, "t", `{"experiment":"E10","seed":1,"scale":"quick"}`)
	waitDepth(t, svc, "t", 0, 0)
	_, queued, _ := postJob(t, ts.URL, "t", `{"experiment":"E10","seed":2,"scale":"quick"}`)

	code, body, _ := get(t, ts.URL+"/jobs")
	if code != http.StatusOK {
		t.Fatalf("GET /jobs = %d", code)
	}
	var list []jobs.Job
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatalf("list not JSON: %v", err)
	}
	if len(list) != 2 || list[0].ID != running.ID || list[1].ID != queued.ID {
		t.Fatalf("list = %+v", list)
	}

	req, _ := http.NewRequest("DELETE", ts.URL+"/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var canceled jobs.Job
	_ = json.NewDecoder(resp.Body).Decode(&canceled)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || canceled.State != jobs.Canceled {
		t.Fatalf("DELETE queued job = %d %+v", resp.StatusCode, canceled)
	}
}
