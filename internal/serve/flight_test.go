package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"broadcastic/internal/jobs"
	"broadcastic/internal/telemetry"
	"broadcastic/internal/telemetry/causal"
)

// flightLine is the NDJSON dump shape the endpoint serves.
type flightLine struct {
	Trace  string            `json:"trace"`
	Span   string            `json:"span"`
	Parent string            `json:"parent"`
	Kind   string            `json:"kind"`
	Name   string            `json:"name"`
	Start  int64             `json:"startNs"`
	End    int64             `json:"endNs"`
	Fault  bool              `json:"fault"`
	Attrs  map[string]string `json:"attrs"`
}

func fetchTrace(t *testing.T, url, traceID string) []flightLine {
	t.Helper()
	resp, err := http.Get(url + "/debug/flightrecorder?trace=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/flightrecorder = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	var lines []flightLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var l flightLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprint(len(lines)); resp.Header.Get("X-Flightrecorder-Records") != want {
		t.Errorf("X-Flightrecorder-Records = %q, want %q",
			resp.Header.Get("X-Flightrecorder-Records"), want)
	}
	return lines
}

// TestFlightRecorderCausalChain is the tentpole acceptance pin: a faulted
// E20 job submitted over HTTP yields a flight-recorder dump that
// reconstructs the full causal chain — admission, queue wait, dispatch,
// execute, sweep cells, netrun hops and injected-fault instants — under
// the one trace ID the job snapshot reports; an E4 job does the same for
// estimator-shard spans.
func TestFlightRecorderCausalChain(t *testing.T) {
	col := telemetry.NewCollector()
	fr := causal.NewRecorder(0)
	svc := jobs.New(jobs.Options{Workers: 1, Recorder: col, Flight: fr})
	defer svc.Close()
	mux := NewMux(col, NewBroker())
	AttachJobs(mux, svc)
	AttachFlightRecorder(mux, fr)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	// A small faulted E20: one (n, k) cell per fault row keeps the trace
	// comfortably inside the ring while still exercising hops and faults.
	spec := `{"experiment":"E20","seed":1,"scale":"quick","ns":[16],"ks":[4],"faults":"drop=0.2"}`
	code, job, _ := postJob(t, ts.URL, "acme", spec)
	if code != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d, want 202", code)
	}
	if job.TraceID == "" {
		t.Fatal("traced submission has no traceId")
	}
	done := pollDone(t, ts.URL, job.ID)
	if done.TraceID != job.TraceID {
		t.Errorf("traceId changed across snapshots: %q -> %q", job.TraceID, done.TraceID)
	}

	lines := fetchTrace(t, ts.URL, job.TraceID)
	spans := map[string]flightLine{} // name -> first record seen
	counts := map[string]int{}
	for _, l := range lines {
		if l.Trace != job.TraceID {
			t.Fatalf("filtered dump contains foreign trace %q", l.Trace)
		}
		counts[l.Name]++
		if _, seen := spans[l.Name]; !seen {
			spans[l.Name] = l
		}
	}
	for _, want := range []string{
		causal.JobAdmission, causal.JobQueueWait, causal.JobDispatch,
		causal.JobExecute, causal.JobDone, causal.SimCell,
		causal.NetrunHop, causal.NetrunFault,
	} {
		if counts[want] == 0 {
			t.Errorf("trace missing %q records (have %v)", want, counts)
		}
	}
	// Parent links reconstruct the chain: everything in the job layer hangs
	// off the admission root; engine records hang off the execute span.
	root := spans[causal.JobAdmission]
	if root.Parent != "" {
		t.Errorf("admission root has parent %q", root.Parent)
	}
	if root.Attrs["tenant"] != "acme" || root.Attrs["experiment"] != "E20" {
		t.Errorf("admission attrs = %v", root.Attrs)
	}
	exec := spans[causal.JobExecute]
	for name, wantParent := range map[string]string{
		causal.JobQueueWait: root.Span,
		causal.JobDispatch:  root.Span,
		causal.JobExecute:   root.Span,
		causal.JobDone:      root.Span,
		causal.SimCell:      exec.Span,
		causal.NetrunHop:    exec.Span,
		causal.NetrunFault:  exec.Span,
	} {
		if got := spans[name].Parent; got != wantParent {
			t.Errorf("%s parent = %q, want %q", name, got, wantParent)
		}
	}
	for _, l := range lines {
		if l.Name == causal.NetrunFault && !l.Fault {
			t.Error("netrun.fault record not flagged as a fault")
		}
		if l.Kind == "span" && l.End < l.Start {
			t.Errorf("span %s ends before it starts", l.Name)
		}
	}
	// Any retransmissions parent to the hop they repaired.
	for _, l := range lines {
		if l.Name != causal.NetrunRetry {
			continue
		}
		if l.Attrs["attempt"] == "" {
			t.Errorf("retry record missing attempt attr: %+v", l)
		}
	}

	// An estimator experiment records per-shard spans under its own trace.
	code, ejob, _ := postJob(t, ts.URL, "acme", `{"experiment":"E4","seed":1,"scale":"quick"}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST /jobs (E4) = %d", code)
	}
	pollDone(t, ts.URL, ejob.ID)
	var shards int
	for _, l := range fetchTrace(t, ts.URL, ejob.TraceID) {
		if l.Name == causal.CoreShard {
			shards++
			if eng := l.Attrs["engine"]; eng != "ir" && eng != "lanes" && eng != "scalar" {
				t.Errorf("shard span engine attr = %q", eng)
			}
		}
	}
	if shards == 0 {
		t.Error("E4 trace has no core.cic.shard spans")
	}

	// The two jobs' traces are distinct and the unfiltered dump holds both.
	if ejob.TraceID == job.TraceID {
		t.Error("two jobs share one trace ID")
	}
	code, body, _ := get(t, ts.URL+"/debug/flightrecorder")
	if code != http.StatusOK {
		t.Fatalf("unfiltered dump = %d", code)
	}
	if !strings.Contains(body, job.TraceID) || !strings.Contains(body, ejob.TraceID) {
		t.Error("unfiltered dump missing a trace")
	}
	// Malformed filters are rejected.
	if code, _, _ := get(t, ts.URL+"/debug/flightrecorder?trace=xyz"); code != http.StatusBadRequest {
		t.Errorf("malformed trace filter = %d, want 400", code)
	}
}

// TestMetricsPerTenantSeries pins the per-tenant attribution surface: with
// two tenants active concurrently, /metrics exposes tenant-labeled queue
// depth, submission and queue-wait series alongside the fleet-wide totals.
func TestMetricsPerTenantSeries(t *testing.T) {
	col := telemetry.NewCollector()
	release := make(chan struct{})
	svc := jobs.New(jobs.Options{
		Workers: 1, QueueCap: 4, Recorder: col,
		Cache: jobs.NewCache(4, 0, "", col),
		Run: func(jobs.JobSpec, jobs.RunContext) ([]byte, error) {
			<-release
			return []byte("x"), nil
		},
	})
	defer func() {
		close(release)
		svc.Close()
	}()
	mux := NewMux(col, NewBroker())
	AttachJobs(mux, svc)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	// t1's first job occupies the worker; one more t1 job and one t2 job sit
	// queued, so both tenants have nonzero depth at scrape time.
	for i, tenant := range []string{"t1", "t1", "t2"} {
		spec := fmt.Sprintf(`{"experiment":"E10","seed":%d,"scale":"quick"}`, i+1)
		if code, _, _ := postJob(t, ts.URL, tenant, spec); code != http.StatusAccepted {
			t.Fatalf("POST %d = %d", i, code)
		}
	}
	waitDepth := func(tenant string, want int) {
		t.Helper()
		// The lone worker may not have popped t1's first job yet.
		for i := 0; i < 200; i++ {
			if svc.QueueDepth(tenant) == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("tenant %s depth = %d, want %d", tenant, svc.QueueDepth(tenant), want)
	}
	waitDepth("t1", 1)
	waitDepth("t2", 1)

	_, body, _ := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		`jobs_queue_depth{tenant="t1"} 1`,
		`jobs_queue_depth{tenant="t2"} 1`,
		`jobs_tenant_submitted{tenant="t1"} 2`,
		`jobs_tenant_submitted{tenant="t2"} 1`,
		`jobs_cache_hit_ratio{tenant="t1"} 0`,
		`jobs_submitted 3`,
	} {
		if !strings.Contains(body, want+"\n") {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	// The labeled histogram family renders under one TYPE line with the
	// fleet-wide series: at least one t1 queue-wait bucket once dispatched.
	if !strings.Contains(body, "# TYPE jobs_queue_wait_ns histogram") {
		t.Errorf("/metrics missing queue-wait histogram TYPE line:\n%s", body)
	}
}

// TestHealthzReadiness pins the liveness/readiness split: /healthz serves
// 503 with ready:false until the service reports ready and again once
// draining begins, while ?live=1 stays 200 throughout.
func TestHealthzReadiness(t *testing.T) {
	health := &Health{}
	ts := httptest.NewServer(NewMuxHealth(nil, nil, health))
	defer ts.Close()

	check := func(wantCode int, wantReady bool) {
		t.Helper()
		code, body, _ := get(t, ts.URL+"/healthz")
		if code != wantCode {
			t.Fatalf("GET /healthz = %d, want %d", code, wantCode)
		}
		var h map[string]any
		if err := json.Unmarshal([]byte(body), &h); err != nil {
			t.Fatalf("healthz not JSON: %v", err)
		}
		if h["ready"] != wantReady {
			t.Errorf("ready = %v, want %v", h["ready"], wantReady)
		}
		// Liveness never depends on readiness.
		if code, _, _ := get(t, ts.URL+"/healthz?live=1"); code != http.StatusOK {
			t.Errorf("GET /healthz?live=1 = %d, want 200", code)
		}
	}
	check(http.StatusServiceUnavailable, false) // before startup completes
	health.SetReady(true)
	check(http.StatusOK, true) // serving
	health.SetReady(false)
	check(http.StatusServiceUnavailable, false) // draining

	// NewMux (no Health) stays always-ready for embedded/test uses.
	plain := httptest.NewServer(NewMux(nil, nil))
	defer plain.Close()
	if code, _, _ := get(t, plain.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("NewMux /healthz = %d, want 200", code)
	}
}
