package serve

import (
	"net/http"
	"strconv"

	"broadcastic/internal/telemetry/causal"
)

// AttachFlightRecorder mounts the flight recorder's dump endpoint:
//
//	GET /debug/flightrecorder            — every held record, NDJSON
//	GET /debug/flightrecorder?trace=<id> — one trace's records (16-hex id,
//	                                       as jobs report in "traceId");
//	                                       400 on a malformed id
//
// Records stream oldest-first (see causal.Recorder.Records); the held set
// is the bounded ring's current contents, so a dump is a snapshot of the
// recent past, not an archive. The X-Flightrecorder-Records header carries
// the record count, letting scripts distinguish "empty trace" from "trace
// evicted" cheaply.
func AttachFlightRecorder(mux *http.ServeMux, fr *causal.Recorder) {
	mux.HandleFunc("GET /debug/flightrecorder", func(w http.ResponseWriter, r *http.Request) {
		var filter causal.TraceID
		if raw := r.URL.Query().Get("trace"); raw != "" {
			id, err := causal.ParseTraceID(raw)
			if err != nil {
				httpError(w, http.StatusBadRequest, err.Error())
				return
			}
			filter = id
		}
		recs := fr.Records(filter)
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Flightrecorder-Records", strconv.Itoa(len(recs)))
		_ = causal.DumpRecords(w, recs)
	})
}
