// Package twoparty implements the classical two-party communication
// complexity substrate the paper builds on (Section 1 cites the Ω(n)
// two-player set-disjointness bounds of Kalyanasundaram–Schnitger and
// Razborov; Section 3's broadcast model specializes to it at k = 2).
//
// The package makes the textbook machinery executable for small universes:
//
//   - communication matrices M_f(x, y) = f(x, y);
//   - deterministic protocol trees, evaluated with exact bit counts;
//   - the fundamental rectangle lemma ("the inputs reaching any node of a
//     deterministic protocol form a combinatorial rectangle"), verified by
//     computing each leaf's rectangle and checking the partition and its
//     monochromaticity;
//   - fooling sets, with an exhaustive verifier, and the explicit size-2^n
//     fooling set {(S, S̄)} for DISJ_n that yields CC(DISJ_n) ≥ n.
//
// Everything here is exact and exhaustive; universes are capped at
// n ≤ 12 (matrices of size 2^n × 2^n).
package twoparty

import (
	"fmt"
	"math/bits"
)

// maxN caps the universe so matrices stay enumerable.
const maxN = 12

// Func is a two-party Boolean function on n-bit inputs.
type Func struct {
	N    int
	Name string
	Eval func(x, y int) int
}

// Disjointness returns DISJ_n: f(x, y) = 1 iff the sets x, y ⊆ [n]
// (bitmask-encoded) are disjoint.
func Disjointness(n int) (*Func, error) {
	if n < 1 || n > maxN {
		return nil, fmt.Errorf("twoparty: n=%d outside [1,%d]", n, maxN)
	}
	return &Func{
		N:    n,
		Name: fmt.Sprintf("DISJ_%d", n),
		Eval: func(x, y int) int {
			if x&y == 0 {
				return 1
			}
			return 0
		},
	}, nil
}

// Equality returns EQ_n: f(x, y) = 1 iff x = y. Its canonical fooling set
// is the diagonal, of size 2^n.
func Equality(n int) (*Func, error) {
	if n < 1 || n > maxN {
		return nil, fmt.Errorf("twoparty: n=%d outside [1,%d]", n, maxN)
	}
	return &Func{
		N:    n,
		Name: fmt.Sprintf("EQ_%d", n),
		Eval: func(x, y int) int {
			if x == y {
				return 1
			}
			return 0
		},
	}, nil
}

// InnerProduct returns IP_n: f(x, y) = ⟨x, y⟩ mod 2.
func InnerProduct(n int) (*Func, error) {
	if n < 1 || n > maxN {
		return nil, fmt.Errorf("twoparty: n=%d outside [1,%d]", n, maxN)
	}
	return &Func{
		N:    n,
		Name: fmt.Sprintf("IP_%d", n),
		Eval: func(x, y int) int { return bits.OnesCount(uint(x&y)) % 2 },
	}, nil
}

// FoolingSet is a set of input pairs claimed to be fooling for a function:
// all pairs evaluate to Value, and for any two pairs (x1,y1), (x2,y2) at
// least one crossed pair (x1,y2) or (x2,y1) evaluates differently.
type FoolingSet struct {
	Value int
	Pairs [][2]int
}

// Verify checks the fooling property exhaustively. A valid fooling set of
// size s certifies CC(f) ≥ ⌈log₂ s⌉ (every pair needs its own
// monochromatic rectangle).
func (fs *FoolingSet) Verify(f *Func) error {
	if f == nil {
		return fmt.Errorf("twoparty: nil function")
	}
	for i, p := range fs.Pairs {
		if got := f.Eval(p[0], p[1]); got != fs.Value {
			return fmt.Errorf("twoparty: pair %d evaluates to %d, want %d", i, got, fs.Value)
		}
	}
	for i := 0; i < len(fs.Pairs); i++ {
		for j := i + 1; j < len(fs.Pairs); j++ {
			a, b := fs.Pairs[i], fs.Pairs[j]
			if f.Eval(a[0], b[1]) == fs.Value && f.Eval(b[0], a[1]) == fs.Value {
				return fmt.Errorf("twoparty: pairs %d and %d do not fool (both crossings monochromatic)", i, j)
			}
		}
	}
	return nil
}

// LowerBound returns the communication lower bound ⌈log₂ |S|⌉ certified by
// the fooling set.
func (fs *FoolingSet) LowerBound() int {
	size := len(fs.Pairs)
	if size <= 1 {
		return 0
	}
	return bits.Len(uint(size - 1))
}

// DisjointnessFoolingSet returns the classical size-2^n fooling set for
// DISJ_n: the pairs (S, S̄) for every S ⊆ [n]. Each such pair is disjoint;
// crossing two distinct pairs always intersects on one side.
func DisjointnessFoolingSet(n int) (*FoolingSet, error) {
	if n < 1 || n > maxN {
		return nil, fmt.Errorf("twoparty: n=%d outside [1,%d]", n, maxN)
	}
	full := 1<<uint(n) - 1
	fs := &FoolingSet{Value: 1}
	for s := 0; s <= full; s++ {
		fs.Pairs = append(fs.Pairs, [2]int{s, full &^ s})
	}
	return fs, nil
}

// EqualityFoolingSet returns the diagonal fooling set for EQ_n.
func EqualityFoolingSet(n int) (*FoolingSet, error) {
	if n < 1 || n > maxN {
		return nil, fmt.Errorf("twoparty: n=%d outside [1,%d]", n, maxN)
	}
	fs := &FoolingSet{Value: 1}
	for s := 0; s < 1<<uint(n); s++ {
		fs.Pairs = append(fs.Pairs, [2]int{s, s})
	}
	return fs, nil
}

// Node is one node of a deterministic two-party protocol tree. Exactly one
// of the following holds: Leaf >= 0 (the node outputs Leaf), or Speaker is
// 0 (Alice) or 1 (Bob) and the children are taken according to the bit the
// speaker sends, which is Send evaluated on the speaker's input.
type Node struct {
	Leaf    int // output value, or -1 for internal nodes
	Speaker int // 0 = Alice, 1 = Bob (internal nodes only)
	Send    func(input int) int
	Child   [2]*Node
}

// Tree is a deterministic two-party protocol.
type Tree struct {
	N    int
	Root *Node
}

// Run evaluates the protocol on (x, y), returning the output and the
// number of bits exchanged.
func (t *Tree) Run(x, y int) (output, cost int, err error) {
	node := t.Root
	for depth := 0; ; depth++ {
		if node == nil {
			return 0, 0, fmt.Errorf("twoparty: nil node at depth %d", depth)
		}
		if depth > 64 {
			return 0, 0, fmt.Errorf("twoparty: protocol deeper than 64")
		}
		if node.Leaf >= 0 {
			return node.Leaf, cost, nil
		}
		if node.Send == nil {
			return 0, 0, fmt.Errorf("twoparty: internal node without a message function")
		}
		input := x
		if node.Speaker == 1 {
			input = y
		}
		b := node.Send(input)
		if b != 0 && b != 1 {
			return 0, 0, fmt.Errorf("twoparty: non-binary message %d", b)
		}
		cost++
		node = node.Child[b]
	}
}

// Correct reports whether the protocol computes f on every input pair, and
// the worst-case cost observed.
func (t *Tree) Correct(f *Func) (bool, int, error) {
	size := 1 << uint(t.N)
	worst := 0
	for x := 0; x < size; x++ {
		for y := 0; y < size; y++ {
			out, cost, err := t.Run(x, y)
			if err != nil {
				return false, 0, err
			}
			if cost > worst {
				worst = cost
			}
			if out != f.Eval(x, y) {
				return false, worst, nil
			}
		}
	}
	return true, worst, nil
}

// Rectangle is a combinatorial rectangle A × B of input pairs.
type Rectangle struct {
	A, B []int
	Leaf int // the protocol output on this rectangle
}

// LeafRectangles computes, for each leaf, the rectangle of inputs reaching
// it — the executable form of the fundamental lemma. It also verifies that
// the rectangles partition the full input square.
func (t *Tree) LeafRectangles() ([]Rectangle, error) {
	size := 1 << uint(t.N)
	var rects []Rectangle
	var walk func(node *Node, aSet, bSet []int) error
	walk = func(node *Node, aSet, bSet []int) error {
		if node == nil {
			return fmt.Errorf("twoparty: nil node")
		}
		if node.Leaf >= 0 {
			rects = append(rects, Rectangle{A: aSet, B: bSet, Leaf: node.Leaf})
			return nil
		}
		if node.Send == nil {
			return fmt.Errorf("twoparty: internal node without a message function")
		}
		var part [2][]int
		src := aSet
		if node.Speaker == 1 {
			src = bSet
		}
		for _, v := range src {
			b := node.Send(v)
			if b != 0 && b != 1 {
				return fmt.Errorf("twoparty: non-binary message %d", b)
			}
			part[b] = append(part[b], v)
		}
		for b := 0; b < 2; b++ {
			if len(part[b]) == 0 {
				continue
			}
			if node.Speaker == 0 {
				if err := walk(node.Child[b], part[b], bSet); err != nil {
					return err
				}
			} else {
				if err := walk(node.Child[b], aSet, part[b]); err != nil {
					return err
				}
			}
		}
		return nil
	}
	all := make([]int, size)
	for i := range all {
		all[i] = i
	}
	if err := walk(t.Root, all, all); err != nil {
		return nil, err
	}
	// Partition check: every pair covered exactly once.
	seen := make([]int, size*size)
	for _, r := range rects {
		for _, x := range r.A {
			for _, y := range r.B {
				seen[x*size+y]++
			}
		}
	}
	for idx, c := range seen {
		if c != 1 {
			return nil, fmt.Errorf("twoparty: input pair (%d,%d) covered %d times", idx/size, idx%size, c)
		}
	}
	return rects, nil
}

// VerifyRectangleLemma checks that every leaf rectangle of a protocol that
// correctly computes f is monochromatic — the combinatorial heart of all
// deterministic lower bounds.
func (t *Tree) VerifyRectangleLemma(f *Func) error {
	ok, _, err := t.Correct(f)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("twoparty: protocol does not compute %s", f.Name)
	}
	rects, err := t.LeafRectangles()
	if err != nil {
		return err
	}
	for ri, r := range rects {
		for _, x := range r.A {
			for _, y := range r.B {
				if f.Eval(x, y) != r.Leaf {
					return fmt.Errorf("twoparty: rectangle %d not monochromatic at (%d,%d)", ri, x, y)
				}
			}
		}
	}
	return nil
}

// TrivialProtocol is the n+1-bit protocol: Alice sends her input bit by
// bit, then Bob announces f(x, y). Its cost matches the fooling-set lower
// bound for DISJ_n up to the single answer bit.
func TrivialProtocol(f *Func) (*Tree, error) {
	if f == nil {
		return nil, fmt.Errorf("twoparty: nil function")
	}
	// Build the tree bottom-up: after Alice's n bits, the reached node
	// knows x exactly; Bob answers with f(x, ·).
	var build func(depth, xPrefix int) *Node
	build = func(depth, xPrefix int) *Node {
		if depth == f.N {
			x := xPrefix
			answer := &Node{
				Leaf:    -1,
				Speaker: 1,
				Send:    func(y int) int { return f.Eval(x, y) },
				Child: [2]*Node{
					{Leaf: 0},
					{Leaf: 1},
				},
			}
			return answer
		}
		d := depth
		return &Node{
			Leaf:    -1,
			Speaker: 0,
			Send:    func(x int) int { return x >> uint(d) & 1 },
			Child: [2]*Node{
				build(depth+1, xPrefix),
				build(depth+1, xPrefix|1<<uint(d)),
			},
		}
	}
	return &Tree{N: f.N, Root: build(0, 0)}, nil
}
