package twoparty

import (
	"testing"
)

func TestFunctionConstructors(t *testing.T) {
	if _, err := Disjointness(0); err == nil {
		t.Fatal("DISJ_0 succeeded")
	}
	if _, err := Disjointness(13); err == nil {
		t.Fatal("DISJ_13 succeeded")
	}
	if _, err := Equality(0); err == nil {
		t.Fatal("EQ_0 succeeded")
	}
	if _, err := InnerProduct(13); err == nil {
		t.Fatal("IP_13 succeeded")
	}

	disj, err := Disjointness(3)
	if err != nil {
		t.Fatal(err)
	}
	if disj.Eval(0b101, 0b010) != 1 {
		t.Fatal("disjoint sets not recognized")
	}
	if disj.Eval(0b101, 0b100) != 0 {
		t.Fatal("intersecting sets not recognized")
	}

	eq, _ := Equality(3)
	if eq.Eval(5, 5) != 1 || eq.Eval(5, 6) != 0 {
		t.Fatal("equality misevaluates")
	}

	ip, _ := InnerProduct(3)
	if ip.Eval(0b011, 0b011) != 0 { // two shared bits → parity 0
		t.Fatal("IP misevaluates 011·011")
	}
	if ip.Eval(0b001, 0b001) != 1 {
		t.Fatal("IP misevaluates 001·001")
	}
}

func TestDisjointnessFoolingSet(t *testing.T) {
	// The classical Ω(n) bound: the set {(S, S̄)} is fooling for DISJ_n.
	for n := 1; n <= 8; n++ {
		f, err := Disjointness(n)
		if err != nil {
			t.Fatal(err)
		}
		fs, err := DisjointnessFoolingSet(n)
		if err != nil {
			t.Fatal(err)
		}
		if len(fs.Pairs) != 1<<uint(n) {
			t.Fatalf("n=%d: fooling set size %d, want %d", n, len(fs.Pairs), 1<<uint(n))
		}
		if err := fs.Verify(f); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if lb := fs.LowerBound(); lb != n {
			t.Fatalf("n=%d: certified bound %d, want %d", n, lb, n)
		}
	}
}

func TestEqualityFoolingSet(t *testing.T) {
	for n := 1; n <= 6; n++ {
		f, _ := Equality(n)
		fs, err := EqualityFoolingSet(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.Verify(f); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if fs.LowerBound() != n {
			t.Fatalf("n=%d: bound %d", n, fs.LowerBound())
		}
	}
}

func TestFoolingSetVerifierCatchesBadSets(t *testing.T) {
	f, _ := Disjointness(2)
	// Non-monochromatic pair.
	bad := &FoolingSet{Value: 1, Pairs: [][2]int{{0b01, 0b01}}}
	if err := bad.Verify(f); err == nil {
		t.Fatal("intersecting pair accepted as value-1")
	}
	// Two pairs that do not fool each other: (∅, ∅) and (∅, {0}) — both
	// crossings stay disjoint.
	notFooling := &FoolingSet{Value: 1, Pairs: [][2]int{{0, 0}, {0, 1}}}
	if err := notFooling.Verify(f); err == nil {
		t.Fatal("non-fooling set accepted")
	}
	if err := (&FoolingSet{}).Verify(nil); err == nil {
		t.Fatal("nil function accepted")
	}
}

func TestFoolingSetLowerBoundEdge(t *testing.T) {
	if (&FoolingSet{}).LowerBound() != 0 {
		t.Fatal("empty fooling set bound nonzero")
	}
	one := &FoolingSet{Pairs: [][2]int{{0, 0}}}
	if one.LowerBound() != 0 {
		t.Fatal("singleton fooling set bound nonzero")
	}
	three := &FoolingSet{Pairs: [][2]int{{0, 0}, {1, 1}, {2, 2}}}
	if three.LowerBound() != 2 {
		t.Fatalf("size-3 bound %d, want 2", three.LowerBound())
	}
}

func TestTrivialProtocolCorrectAndTight(t *testing.T) {
	for n := 1; n <= 6; n++ {
		for _, mk := range []func(int) (*Func, error){Disjointness, Equality, InnerProduct} {
			f, err := mk(n)
			if err != nil {
				t.Fatal(err)
			}
			tree, err := TrivialProtocol(f)
			if err != nil {
				t.Fatal(err)
			}
			ok, worst, err := tree.Correct(f)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("%s: trivial protocol incorrect", f.Name)
			}
			if worst != n+1 {
				t.Fatalf("%s: worst cost %d, want %d", f.Name, worst, n+1)
			}
		}
	}
}

func TestTrivialProtocolMeetsFoolingBound(t *testing.T) {
	// CC(DISJ_n) is pinned between the fooling bound n and the trivial
	// protocol's n+1: the classical Θ(n).
	const n = 6
	f, _ := Disjointness(n)
	fs, _ := DisjointnessFoolingSet(n)
	if err := fs.Verify(f); err != nil {
		t.Fatal(err)
	}
	tree, _ := TrivialProtocol(f)
	_, worst, err := tree.Correct(f)
	if err != nil {
		t.Fatal(err)
	}
	if fs.LowerBound() > worst {
		t.Fatalf("fooling bound %d above achievable cost %d", fs.LowerBound(), worst)
	}
	if worst-fs.LowerBound() > 1 {
		t.Fatalf("gap between bound %d and protocol %d exceeds one bit", fs.LowerBound(), worst)
	}
}

func TestRectangleLemma(t *testing.T) {
	// The leaves of a correct deterministic protocol partition the input
	// square into monochromatic rectangles.
	for _, mk := range []func(int) (*Func, error){Disjointness, Equality, InnerProduct} {
		f, err := mk(4)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := TrivialProtocol(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := tree.VerifyRectangleLemma(f); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
	}
}

func TestLeafRectangleCountAtLeastFoolingSize(t *testing.T) {
	// Executable form of the counting argument: a correct protocol needs
	// at least |fooling set| distinct value-1 rectangles.
	const n = 4
	f, _ := Disjointness(n)
	fs, _ := DisjointnessFoolingSet(n)
	tree, _ := TrivialProtocol(f)
	rects, err := tree.LeafRectangles()
	if err != nil {
		t.Fatal(err)
	}
	ones := 0
	for _, r := range rects {
		if r.Leaf == 1 && len(r.A) > 0 && len(r.B) > 0 {
			ones++
		}
	}
	if ones < len(fs.Pairs) {
		t.Fatalf("%d value-1 rectangles, fooling set needs >= %d", ones, len(fs.Pairs))
	}
}

func TestTreeRunErrors(t *testing.T) {
	bad := &Tree{N: 2, Root: nil}
	if _, _, err := bad.Run(0, 0); err == nil {
		t.Fatal("nil root accepted")
	}
	noSend := &Tree{N: 2, Root: &Node{Leaf: -1, Speaker: 0}}
	if _, _, err := noSend.Run(0, 0); err == nil {
		t.Fatal("internal node without message function accepted")
	}
	nonBinary := &Tree{N: 2, Root: &Node{
		Leaf:    -1,
		Speaker: 0,
		Send:    func(int) int { return 2 },
		Child:   [2]*Node{{Leaf: 0}, {Leaf: 1}},
	}}
	if _, _, err := nonBinary.Run(0, 0); err == nil {
		t.Fatal("non-binary message accepted")
	}
	if _, err := TrivialProtocol(nil); err == nil {
		t.Fatal("nil function accepted")
	}
	if _, err := noSend.LeafRectangles(); err == nil {
		t.Fatal("LeafRectangles on malformed tree succeeded")
	}
}

func TestIncorrectProtocolFailsRectangleLemmaCheck(t *testing.T) {
	f, _ := Disjointness(2)
	alwaysOne := &Tree{N: 2, Root: &Node{Leaf: 1}}
	if err := alwaysOne.VerifyRectangleLemma(f); err == nil {
		t.Fatal("constant protocol passed the correctness gate")
	}
}
