// Package intersect implements sparse set intersection in the broadcast
// model: k players each hold a set of at most s elements of [n] and decide
// whether some element is common to all.
//
// The introduction of the paper recalls Håstad and Wigderson's result that
// two-player disjointness under the promise |X| = |Y| = s needs only O(s)
// bits — the naive O(s log n) factor is avoidable. This package realizes
// that phenomenon in the broadcast model with a hashing protocol:
//
//  1. all players share a public random hash h : [n] → [2s];
//  2. player 1 writes the bitmap of h(X_1) (2s bits); each subsequent
//     player writes the bitmap of the hashes of its elements that survived
//     the previous bitmap;
//  3. player 1 lists its elements whose hash survived all k bitmaps
//     (expected O(1) of them plus collision noise), and every other player
//     confirms membership of each listed element with one bit.
//
// Communication is 2sk + O(survivors·(log n + k)) — independent of log n
// up to the final exact verification of an expected-constant number of
// candidates. The Naive baseline (player 1 ships its set explicitly) pays
// the s·log n factor, which experiment E13 exhibits.
package intersect

import (
	"fmt"

	"broadcastic/internal/bitvec"
	"broadcastic/internal/blackboard"
	"broadcastic/internal/encoding"
	"broadcastic/internal/rng"
)

// bitmapPool recycles the Phase A hash bitmaps across protocol runs.
var bitmapPool bitvec.Pool

// Instance is a sparse intersection input: per-player element sets over
// universe [n], each of size at most s.
type Instance struct {
	N    int
	S    int
	Sets [][]int // sorted, distinct elements per player
}

// NewInstance validates a sparse instance.
func NewInstance(n, s int, sets [][]int) (*Instance, error) {
	if n < 1 {
		return nil, fmt.Errorf("intersect: universe %d < 1", n)
	}
	if s < 1 {
		return nil, fmt.Errorf("intersect: sparsity %d < 1", s)
	}
	if len(sets) < 1 {
		return nil, fmt.Errorf("intersect: no players")
	}
	for i, set := range sets {
		if len(set) > s {
			return nil, fmt.Errorf("intersect: player %d holds %d > s=%d elements", i, len(set), s)
		}
		prev := -1
		for _, e := range set {
			if e <= prev || e < 0 || e >= n {
				return nil, fmt.Errorf("intersect: player %d set not sorted/distinct in [0,%d): %v", i, n, set)
			}
			prev = e
		}
	}
	return &Instance{N: n, S: s, Sets: sets}, nil
}

// Generate samples an instance: each player draws exactly s distinct
// elements; when common is true, one shared element is planted in all sets.
func Generate(src *rng.Source, n, s, k int, common bool) (*Instance, error) {
	if src == nil {
		return nil, fmt.Errorf("intersect: nil randomness source")
	}
	if s > n {
		return nil, fmt.Errorf("intersect: sparsity %d exceeds universe %d", s, n)
	}
	if k < 1 {
		return nil, fmt.Errorf("intersect: player count %d < 1", k)
	}
	sets := make([][]int, k)
	var shared int
	if common {
		shared = src.Intn(n)
	}
	for i := 0; i < k; i++ {
		set := src.SampleWithoutReplacement(n, s)
		if common {
			// Replace one element with the shared one if absent.
			found := false
			for _, e := range set {
				if e == shared {
					found = true
					break
				}
			}
			if !found {
				set[src.Intn(len(set))] = shared
				sortInts(set)
				set = dedup(set)
			}
		}
		sets[i] = set
	}
	return NewInstance(n, s, sets)
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

func dedup(xs []int) []int {
	out := xs[:0]
	for i, v := range xs {
		if i == 0 || v != xs[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Truth reports whether some element is common to all sets.
func (inst *Instance) Truth() (int, bool) {
	if len(inst.Sets) == 0 {
		return 0, false
	}
	counts := make(map[int]int)
	for _, set := range inst.Sets {
		for _, e := range set {
			counts[e]++
		}
	}
	for e, c := range counts {
		if c == len(inst.Sets) {
			return e, true
		}
	}
	return 0, false
}

// Outcome reports a protocol run.
type Outcome struct {
	Common  bool // some element common to all sets
	Witness int  // a common element when Common
	Bits    int
}

// SolveHashed runs the hashing protocol described in the package comment.
// publicSeed seeds the shared hash and must be common knowledge.
func SolveHashed(inst *Instance, publicSeed uint64) (*Outcome, error) {
	if inst == nil {
		return nil, fmt.Errorf("intersect: nil instance")
	}
	k := len(inst.Sets)
	m := 2 * inst.S // bitmap width

	hash := func(e int) int {
		h := rng.New(publicSeed ^ (uint64(e)+1)*0x9e3779b97f4a7c15)
		return h.Intn(m)
	}

	bits := 0
	// Phase A: cascading bitmaps. Simulated sequentially; every message is
	// charged exactly (m bits each). The two bitmaps come from the package
	// pool so repeated trials (E13 sweeps many instances) allocate nothing.
	prev, err := bitmapPool.Get(m)
	if err != nil {
		return nil, err
	}
	defer bitmapPool.Put(prev)
	cur, err := bitmapPool.Get(m)
	if err != nil {
		return nil, err
	}
	defer bitmapPool.Put(cur)
	prev.SetAll() // player 1 filters against "everything"
	for i := 0; i < k; i++ {
		cur.ClearAll()
		for _, e := range inst.Sets[i] {
			if prev.Get(hash(e)) {
				if err := cur.Set(hash(e)); err != nil {
					return nil, err
				}
			}
		}
		prev, cur = cur, prev
		bits += m
	}

	// Phase B: player 1 lists its surviving elements exactly.
	var candidates []int
	for _, e := range inst.Sets[0] {
		if prev.Get(hash(e)) {
			candidates = append(candidates, e)
		}
	}
	width := encoding.FixedWidth(uint64(inst.N))
	bits += encoding.NonNegLen(uint64(len(candidates))) + len(candidates)*width

	// Phase C: every other player confirms each candidate with one bit.
	membership := make([]bool, len(candidates))
	for ci := range membership {
		membership[ci] = true
	}
	for i := 1; i < k; i++ {
		has := make(map[int]bool, len(inst.Sets[i]))
		for _, e := range inst.Sets[i] {
			has[e] = true
		}
		for ci, e := range candidates {
			if !has[e] {
				membership[ci] = false
			}
		}
		bits += len(candidates)
	}
	for ci, ok := range membership {
		if ok {
			return &Outcome{Common: true, Witness: candidates[ci], Bits: bits}, nil
		}
	}
	return &Outcome{Common: false, Bits: bits}, nil
}

// SolveNaive is the baseline: player 1 writes its whole set explicitly
// (s·⌈log₂ n⌉ bits) and every other player answers with a membership
// bitmap over that list. Its cost carries the log n factor the hashed
// protocol avoids.
func SolveNaive(inst *Instance) (*Outcome, error) {
	if inst == nil {
		return nil, fmt.Errorf("intersect: nil instance")
	}
	k := len(inst.Sets)
	width := encoding.FixedWidth(uint64(inst.N))
	list := inst.Sets[0]
	bits := encoding.NonNegLen(uint64(len(list))) + len(list)*width

	membership := make([]bool, len(list))
	for i := range membership {
		membership[i] = true
	}
	for i := 1; i < k; i++ {
		has := make(map[int]bool, len(inst.Sets[i]))
		for _, e := range inst.Sets[i] {
			has[e] = true
		}
		for ci, e := range list {
			if !has[e] {
				membership[ci] = false
			}
		}
		bits += len(list)
	}
	for ci, ok := range membership {
		if ok {
			return &Outcome{Common: true, Witness: list[ci], Bits: bits}, nil
		}
	}
	return &Outcome{Common: false, Bits: bits}, nil
}

// RunOnBlackboard executes the hashing protocol on the blackboard runtime
// (messages physically written, bit counts independently accounted) and
// checks that the physical cost matches SolveHashed's accounting. It
// returns the blackboard outcome.
func RunOnBlackboard(inst *Instance, publicSeed uint64) (*Outcome, error) {
	if inst == nil {
		return nil, fmt.Errorf("intersect: nil instance")
	}
	k := len(inst.Sets)
	m := 2 * inst.S
	hash := func(e int) int {
		h := rng.New(publicSeed ^ (uint64(e)+1)*0x9e3779b97f4a7c15)
		return h.Intn(m)
	}
	width := encoding.FixedWidth(uint64(inst.N))

	// Shared decoded state (a pure function of the board).
	prev := make([]bool, m)
	for i := range prev {
		prev[i] = true
	}
	var (
		candidates []int
		membership []bool
		phase      = 0 // 0: bitmaps, 1: listing, 2: confirmations
		confirmed  = 0
	)

	players := make([]blackboard.Player, k)
	for i := 0; i < k; i++ {
		i := i
		players[i] = blackboard.FuncPlayer(func(b *blackboard.Board) (blackboard.Message, error) {
			var w encoding.BitWriter
			switch phase {
			case 0: // bitmap round
				cur := make([]bool, m)
				for _, e := range inst.Sets[i] {
					if prev[hash(e)] {
						cur[hash(e)] = true
					}
				}
				for _, bitSet := range cur {
					bit := 0
					if bitSet {
						bit = 1
					}
					if err := w.WriteBit(bit); err != nil {
						return blackboard.Message{}, err
					}
				}
				prev = cur
			case 1: // player 0 lists survivors
				for _, e := range inst.Sets[0] {
					if prev[hash(e)] {
						candidates = append(candidates, e)
					}
				}
				if err := encoding.WriteNonNeg(&w, uint64(len(candidates))); err != nil {
					return blackboard.Message{}, err
				}
				for _, e := range candidates {
					if err := w.WriteBits(uint64(e), width); err != nil {
						return blackboard.Message{}, err
					}
				}
				membership = make([]bool, len(candidates))
				for ci := range membership {
					membership[ci] = true
				}
			case 2: // confirmations
				has := make(map[int]bool, len(inst.Sets[i]))
				for _, e := range inst.Sets[i] {
					has[e] = true
				}
				for ci, e := range candidates {
					bit := 0
					if has[e] {
						bit = 1
					} else {
						membership[ci] = false
					}
					if err := w.WriteBit(bit); err != nil {
						return blackboard.Message{}, err
					}
				}
				confirmed++
			}
			return blackboard.NewMessage(i, &w), nil
		})
	}

	sched := blackboard.FuncScheduler(func(b *blackboard.Board) (int, bool, error) {
		nm := b.NumMessages()
		switch {
		case nm < k:
			phase = 0
			return nm, false, nil
		case nm == k:
			phase = 1
			return 0, false, nil
		case nm < 2*k:
			phase = 2
			return nm - k, false, nil
		default:
			return 0, true, nil
		}
	})

	res, err := blackboard.Run(sched, players, nil, blackboard.Limits{MaxMessages: 2 * k})
	if err != nil {
		return nil, fmt.Errorf("intersect: blackboard run: %w", err)
	}
	out := &Outcome{Bits: res.Board.TotalBits()}
	for ci, ok := range membership {
		if ok {
			out.Common = true
			out.Witness = candidates[ci]
			break
		}
	}
	return out, nil
}
