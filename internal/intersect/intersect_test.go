package intersect

import (
	"testing"

	"broadcastic/internal/rng"
)

func TestNewInstanceValidation(t *testing.T) {
	if _, err := NewInstance(0, 1, [][]int{{}}); err == nil {
		t.Fatal("n=0 succeeded")
	}
	if _, err := NewInstance(10, 0, [][]int{{}}); err == nil {
		t.Fatal("s=0 succeeded")
	}
	if _, err := NewInstance(10, 2, nil); err == nil {
		t.Fatal("no players succeeded")
	}
	if _, err := NewInstance(10, 1, [][]int{{1, 2}}); err == nil {
		t.Fatal("oversized set succeeded")
	}
	if _, err := NewInstance(10, 2, [][]int{{2, 1}}); err == nil {
		t.Fatal("unsorted set succeeded")
	}
	if _, err := NewInstance(10, 2, [][]int{{1, 1}}); err == nil {
		t.Fatal("duplicate element succeeded")
	}
	if _, err := NewInstance(10, 2, [][]int{{10}}); err == nil {
		t.Fatal("out-of-range element succeeded")
	}
}

func TestGenerate(t *testing.T) {
	src := rng.New(501)
	inst, err := Generate(src, 1000, 10, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, common := inst.Truth(); !common {
		t.Fatal("planted instance has no common element")
	}
	if _, err := Generate(nil, 10, 2, 2, false); err == nil {
		t.Fatal("nil source succeeded")
	}
	if _, err := Generate(src, 5, 6, 2, false); err == nil {
		t.Fatal("s > n succeeded")
	}
	if _, err := Generate(src, 10, 2, 0, false); err == nil {
		t.Fatal("k=0 succeeded")
	}
}

func TestHashedCorrectRandom(t *testing.T) {
	src := rng.New(502)
	for trial := 0; trial < 200; trial++ {
		n := src.Intn(2000) + 20
		s := src.Intn(15) + 1
		if s > n {
			s = n
		}
		k := src.Intn(6) + 1
		common := src.Bool()
		inst, err := Generate(src, n, s, k, common)
		if err != nil {
			t.Fatal(err)
		}
		wantElem, want := inst.Truth()
		out, err := SolveHashed(inst, src.Uint64())
		if err != nil {
			t.Fatal(err)
		}
		if out.Common != want {
			t.Fatalf("hashed answered %v, truth %v (n=%d s=%d k=%d)", out.Common, want, n, s, k)
		}
		if out.Common {
			// The witness must really be common to all sets.
			for i, set := range inst.Sets {
				found := false
				for _, e := range set {
					if e == out.Witness {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("witness %d not in player %d's set (truth witness %d)", out.Witness, i, wantElem)
				}
			}
		}
	}
	if _, err := SolveHashed(nil, 1); err == nil {
		t.Fatal("nil instance succeeded")
	}
}

func TestNaiveCorrectRandom(t *testing.T) {
	src := rng.New(503)
	for trial := 0; trial < 100; trial++ {
		n := src.Intn(500) + 10
		s := src.Intn(8) + 1
		k := src.Intn(5) + 1
		inst, err := Generate(src, n, s, k, src.Bool())
		if err != nil {
			t.Fatal(err)
		}
		_, want := inst.Truth()
		out, err := SolveNaive(inst)
		if err != nil {
			t.Fatal(err)
		}
		if out.Common != want {
			t.Fatalf("naive answered %v, truth %v", out.Common, want)
		}
	}
	if _, err := SolveNaive(nil); err == nil {
		t.Fatal("nil instance succeeded")
	}
}

func TestHashedCostIndependentOfLogN(t *testing.T) {
	// E13's shape: fixing s and k, the hashed protocol's cost stays flat
	// as n grows by 4096×, while the naive baseline's grows.
	src := rng.New(504)
	const s, k = 16, 3
	var hashedSmall, hashedBig, naiveSmall, naiveBig float64
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		small, err := Generate(src, 1<<8, s, k, false)
		if err != nil {
			t.Fatal(err)
		}
		big, err := Generate(src, 1<<20, s, k, false)
		if err != nil {
			t.Fatal(err)
		}
		hs, err := SolveHashed(small, src.Uint64())
		if err != nil {
			t.Fatal(err)
		}
		hb, err := SolveHashed(big, src.Uint64())
		if err != nil {
			t.Fatal(err)
		}
		ns, err := SolveNaive(small)
		if err != nil {
			t.Fatal(err)
		}
		nb, err := SolveNaive(big)
		if err != nil {
			t.Fatal(err)
		}
		hashedSmall += float64(hs.Bits)
		hashedBig += float64(hb.Bits)
		naiveSmall += float64(ns.Bits)
		naiveBig += float64(nb.Bits)
	}
	if hashedBig > 1.5*hashedSmall {
		t.Fatalf("hashed cost grew with n: %v -> %v", hashedSmall/trials, hashedBig/trials)
	}
	if naiveBig < 1.5*naiveSmall {
		t.Fatalf("naive cost did not grow with n: %v -> %v", naiveSmall/trials, naiveBig/trials)
	}
}

func TestBlackboardMatchesDirect(t *testing.T) {
	// The blackboard execution must agree with the direct solver on both
	// the answer and the exact bit count.
	src := rng.New(505)
	for trial := 0; trial < 50; trial++ {
		n := src.Intn(1000) + 10
		s := src.Intn(10) + 1
		if s > n {
			s = n
		}
		k := src.Intn(5) + 1
		inst, err := Generate(src, n, s, k, src.Bool())
		if err != nil {
			t.Fatal(err)
		}
		seed := src.Uint64()
		direct, err := SolveHashed(inst, seed)
		if err != nil {
			t.Fatal(err)
		}
		board, err := RunOnBlackboard(inst, seed)
		if err != nil {
			t.Fatal(err)
		}
		if direct.Common != board.Common {
			t.Fatalf("answers differ: direct %v, blackboard %v", direct.Common, board.Common)
		}
		if direct.Bits != board.Bits {
			t.Fatalf("bit accounting differs: direct %d, blackboard %d", direct.Bits, board.Bits)
		}
	}
	if _, err := RunOnBlackboard(nil, 1); err == nil {
		t.Fatal("nil instance succeeded")
	}
}
