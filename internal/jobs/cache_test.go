package jobs

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"broadcastic/internal/telemetry"
)

func TestCacheLRU(t *testing.T) {
	col := telemetry.NewCollector()
	c := NewCache(2, 0, "", col)
	c.Put("a", []byte("alpha"))
	c.Put("b", []byte("beta"))
	if _, ok := c.Get("a"); !ok { // refresh a's recency
		t.Fatal("a missing")
	}
	c.Put("c", []byte("gamma")) // evicts b, the LRU entry
	if _, ok := c.Get("b"); ok {
		t.Error("b survived past capacity")
	}
	for _, key := range []string{"a", "c"} {
		if _, ok := c.Get(key); !ok {
			t.Errorf("%s evicted wrongly", key)
		}
	}
	if got := c.Len(); got != 2 {
		t.Errorf("Len = %d", got)
	}
	if got, want := c.Bytes(), int64(len("alpha")+len("gamma")); got != want {
		t.Errorf("Bytes = %d, want %d", got, want)
	}
	if got := col.Counter(telemetry.JobsCacheEvictions); got != 1 {
		t.Errorf("evictions counter = %d", got)
	}
	if got := col.Counter(telemetry.JobsCacheMisses); got != 1 {
		t.Errorf("misses counter = %d", got)
	}
	if got := col.Counter(telemetry.JobsCacheBytes); got != c.Bytes() {
		t.Errorf("bytes counter %d disagrees with Bytes() %d", got, c.Bytes())
	}
}

func TestCacheByteCap(t *testing.T) {
	c := NewCache(100, 10, "", nil)
	c.Put("a", []byte("0123456789")) // exactly at cap
	c.Put("b", []byte("xyz"))        // pushes over; evicts a
	if _, ok := c.Get("a"); ok {
		t.Error("byte cap not enforced")
	}
	if _, ok := c.Get("b"); !ok {
		t.Error("newest entry evicted")
	}
	// The newest entry alone may exceed the cap; it must still be kept
	// (evicting it would make every oversized result uncacheable-looping).
	c.Put("big", make([]byte, 64))
	if _, ok := c.Get("big"); !ok {
		t.Error("oversized entry not retained as sole resident")
	}
}

func TestCacheDiskSpill(t *testing.T) {
	dir := t.TempDir()
	col := telemetry.NewCollector()
	c := NewCache(1, 0, dir, col)
	c.Put("aaaa", []byte("first"))
	c.Put("bbbb", []byte("second")) // evicts aaaa to disk
	if _, err := os.Stat(filepath.Join(dir, "aaaa.result")); err != nil {
		t.Fatalf("spill file missing: %v", err)
	}
	val, ok := c.Get("aaaa") // disk hit, promoted back (evicting bbbb)
	if !ok || string(val) != "first" {
		t.Fatalf("disk readback = %q, %v", val, ok)
	}
	if got := col.Counter(telemetry.JobsCacheDiskHits); got != 1 {
		t.Errorf("disk hit counter = %d", got)
	}
	val, ok = c.Get("bbbb")
	if !ok || string(val) != "second" {
		t.Fatalf("re-evicted entry unreadable: %q, %v", val, ok)
	}
	if got := c.Len(); got != 1 {
		t.Errorf("resident entries = %d, want 1", got)
	}
}

func TestCachePutRefreshSameKey(t *testing.T) {
	c := NewCache(4, 0, "", nil)
	c.Put("k", []byte("one"))
	c.Put("k", []byte("three"))
	val, ok := c.Get("k")
	if !ok || string(val) != "three" {
		t.Fatalf("Get = %q, %v", val, ok)
	}
	if got, want := c.Bytes(), int64(len("three")); got != want {
		t.Errorf("Bytes = %d, want %d", got, want)
	}
}

func TestCacheGetReturnsCopy(t *testing.T) {
	c := NewCache(4, 0, "", nil)
	c.Put("k", []byte("immutable"))
	val, _ := c.Get("k")
	val[0] = 'X'
	again, _ := c.Get("k")
	if string(again) != "immutable" {
		t.Error("caller mutation reached the cached bytes")
	}
}

func TestCacheWarmFromSpill(t *testing.T) {
	dir := t.TempDir()
	old := NewCache(8, 0, dir, nil)
	old.Put("aaaa", []byte("first"))
	old.Put("bbbb", []byte("second"))
	old.Put("cccc", []byte("third"))
	// Rapid writes can share an mtime; pin distinct ones so the warm
	// order (most recent first) is deterministic in this test.
	base := time.Now().Add(-time.Hour)
	for i, key := range []string{"aaaa", "bbbb", "cccc"} {
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, key+".result"), mt, mt); err != nil {
			t.Fatal(err)
		}
	}

	col := telemetry.NewCollector()
	c := NewCache(2, 0, dir, col)
	if got := c.Len(); got != 2 {
		t.Fatalf("warmed %d entries, want 2 (entry cap)", got)
	}
	// The two most recently written results are resident; no miss counter
	// fires for them.
	for _, key := range []string{"bbbb", "cccc"} {
		val, ok := c.Get(key)
		if !ok {
			t.Fatalf("%s not warmed", key)
		}
		if want := map[string]string{"bbbb": "second", "cccc": "third"}[key]; string(val) != want {
			t.Fatalf("%s = %q, want %q", key, val, want)
		}
	}
	if got := col.Counter(telemetry.JobsCacheMisses); got != 0 {
		t.Errorf("warmed reads missed %d times", got)
	}
	// The entry past the cap stayed on disk and is still readable.
	if val, ok := c.Get("aaaa"); !ok || string(val) != "first" {
		t.Fatalf("over-cap entry lost: %q, %v", val, ok)
	}
	if got := col.Counter(telemetry.JobsCacheDiskHits); got != 1 {
		t.Errorf("disk hit counter = %d", got)
	}
	// Byte cap bounds warming too (first entry always admitted).
	tiny := NewCache(8, 3, dir, nil)
	if got := tiny.Len(); got != 1 {
		t.Errorf("byte-capped warm loaded %d entries, want 1", got)
	}
	// Corrupt leftovers are skipped, not fatal.
	if err := os.WriteFile(filepath.Join(dir, "weird.tmp1234"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	again := NewCache(8, 0, dir, nil)
	if _, ok := again.Get("weird"); ok {
		t.Error("temp leftover warmed as an entry")
	}
}

func TestCacheConcurrentHammer(t *testing.T) {
	c := NewCache(8, 1<<10, t.TempDir(), telemetry.NewCollector())
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g*7+i)%16)
				c.Put(key, []byte(key+"-value"))
				if val, ok := c.Get(key); ok && string(val) != key+"-value" {
					t.Errorf("corrupt read %q", val)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}
