package jobs

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"broadcastic/internal/telemetry"
	"broadcastic/internal/telemetry/causal"
)

// countByName tallies a trace's records by name.
func countByName(fr *causal.Recorder, trace causal.TraceID) map[string]int {
	out := map[string]int{}
	for _, rec := range fr.Records(trace) {
		out[rec.Name]++
	}
	return out
}

// TestQueueWaitObservedOnlyAtDispatch pins the queue-wait semantics under
// backpressure: jobs.queue_wait_ns gets exactly one observation per
// *dispatched* job — a job canceled while queued and a rejected submission
// contribute nothing — and the flight recorder mirrors that rule (the
// queue-wait span appears only in dispatched jobs' traces).
func TestQueueWaitObservedOnlyAtDispatch(t *testing.T) {
	col := telemetry.NewCollector()
	fr := causal.NewRecorder(0)
	br := newBlockingRunner()
	svc := New(Options{Workers: 1, QueueCap: 2, Recorder: col, Flight: fr, Run: br.run})
	defer func() {
		br.releaseAll()
		svc.Close()
	}()
	submit := func(seed uint64) (Job, causal.Context, error) {
		cause := fr.StartTrace(causal.JobAdmission, causal.String("tenant", "t"))
		j, err := svc.SubmitTraced("t", JobSpec{Experiment: "E10", Seed: seed, Scale: "quick"}, cause)
		return j, cause, err
	}

	// Seed 1 occupies the lone worker; seeds 2 and 3 fill the queue to cap.
	a, _, err := submit(1)
	if err != nil {
		t.Fatal(err)
	}
	br.waitStart(t)
	b, _, err := submit(2)
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := submit(3)
	if err != nil {
		t.Fatal(err)
	}
	// Seed 4 is over cap: rejected, and its trace records the fault.
	_, rejected, err := submit(4)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-cap submit = %v, want ErrQueueFull", err)
	}
	// Seed 2 cancels out of the queue: it will never be dispatched.
	if j, ok := svc.Cancel(b.ID); !ok || j.State != Canceled {
		t.Fatalf("cancel queued = %+v, %v", j, ok)
	}

	br.releaseAll()
	waitTerminal(t, svc, a.ID)
	waitTerminal(t, svc, c.ID)

	// Two jobs were dispatched (1 and 3); exactly two waits observed, on
	// both the fleet-wide and the tenant-labeled histogram.
	if got := col.Hist(telemetry.JobsQueueWaitNs).Count; got != 2 {
		t.Errorf("queue_wait_ns observations = %d, want 2 (canceled and rejected jobs must not count)", got)
	}
	labeled := telemetry.Labeled(telemetry.JobsQueueWaitNs, "tenant", "t")
	if got := col.Hist(labeled).Count; got != 2 {
		t.Errorf("labeled queue_wait_ns observations = %d, want 2", got)
	}

	// The flight recorder tells the same story per trace.
	for _, tc := range []struct {
		name  string
		job   Job
		waits int
	}{{"dispatched", a, 1}, {"canceled-while-queued", b, 0}, {"dispatched-after-cancel", c, 1}} {
		id, err := causal.ParseTraceID(tc.job.TraceID)
		if err != nil {
			t.Fatalf("%s job traceId %q: %v", tc.name, tc.job.TraceID, err)
		}
		names := countByName(fr, id)
		if names[causal.JobQueueWait] != tc.waits {
			t.Errorf("%s job has %d queue_wait records, want %d (%v)",
				tc.name, names[causal.JobQueueWait], tc.waits, names)
		}
	}
	bNames := countByName(fr, mustTrace(t, b.TraceID))
	if bNames[causal.JobCanceled] != 1 || bNames[causal.JobDispatch] != 0 {
		t.Errorf("canceled job trace = %v, want one jobs.canceled and no dispatch", bNames)
	}
	rejNames := countByName(fr, rejected.Trace())
	if rejNames[causal.JobRejected] != 1 || rejNames[causal.JobQueueWait] != 0 {
		t.Errorf("rejected submission trace = %v, want one jobs.rejected and no queue_wait", rejNames)
	}

	// Every recorded queue-wait span closed before its job's dispatch event.
	for _, job := range []Job{a, c} {
		recs := fr.Records(mustTrace(t, job.TraceID))
		var waitEnd, dispatchAt int64
		for _, rec := range recs {
			switch rec.Name {
			case causal.JobQueueWait:
				waitEnd = rec.End
			case causal.JobDispatch:
				dispatchAt = rec.Start
			}
		}
		if waitEnd == 0 || dispatchAt == 0 || dispatchAt < waitEnd {
			t.Errorf("job %s: dispatch at %dns before queue-wait end %dns", job.ID, dispatchAt, waitEnd)
		}
	}
}

func mustTrace(t *testing.T, s string) causal.TraceID {
	t.Helper()
	id, err := causal.ParseTraceID(s)
	if err != nil {
		t.Fatalf("traceId %q: %v", s, err)
	}
	return id
}

// TestCacheHitTraced pins the cache-hit path's causal record: a traced hit
// is answered at admission with a jobs.cache_hit event and no queue-wait,
// dispatch or execute records.
func TestCacheHitTraced(t *testing.T) {
	col := telemetry.NewCollector()
	fr := causal.NewRecorder(0)
	cache := NewCache(4, 0, "", col)
	svc := New(Options{Workers: 1, Cache: cache, BuildSHA: "b", Recorder: col, Flight: fr,
		Run: func(JobSpec, RunContext) ([]byte, error) { return []byte("r"), nil }})
	defer svc.Close()
	spec := JobSpec{Experiment: "E10", Seed: 1, Scale: "quick"}
	cold, err := svc.SubmitTraced("t", spec, fr.StartTrace(causal.JobAdmission))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, svc, cold.ID)
	warm, err := svc.SubmitTraced("t", spec, fr.StartTrace(causal.JobAdmission))
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatalf("second submission missed: %+v", warm)
	}
	names := countByName(fr, mustTrace(t, warm.TraceID))
	if names[causal.JobCacheHit] != 1 || names[causal.JobQueueWait] != 0 || names[causal.JobExecute] != 0 {
		t.Errorf("cache-hit trace = %v, want one jobs.cache_hit and no queue/execute records", names)
	}
}

// TestFailedJobAutoDumps pins the failure path: a failing traced job
// records jobs.fail with the fault flag and auto-dumps its trace once to
// the recorder's configured writer.
func TestFailedJobAutoDumps(t *testing.T) {
	fr := causal.NewRecorder(0)
	var dump bytes.Buffer
	fr.SetAutoDump(&dump)
	svc := New(Options{Workers: 1, Flight: fr,
		Run: func(JobSpec, RunContext) ([]byte, error) { return nil, errors.New("boom") }})
	defer svc.Close()
	j, err := svc.SubmitTraced("t", JobSpec{Experiment: "E10", Seed: 1, Scale: "quick"},
		fr.StartTrace(causal.JobAdmission, causal.String("tenant", "t")))
	if err != nil {
		t.Fatal(err)
	}
	j = waitTerminal(t, svc, j.ID)
	if j.State != Failed {
		t.Fatalf("job = %+v", j)
	}
	names := countByName(fr, mustTrace(t, j.TraceID))
	if names[causal.JobFail] != 1 {
		t.Fatalf("failed job trace = %v, want one jobs.fail", names)
	}
	var sawFault bool
	for _, rec := range fr.Records(mustTrace(t, j.TraceID)) {
		if rec.Name == causal.JobFail && rec.Fault {
			sawFault = true
		}
	}
	if !sawFault {
		t.Error("jobs.fail record not marked as a fault")
	}
	out := dump.String()
	if out == "" {
		t.Fatal("failure did not auto-dump the trace")
	}
	for _, want := range []string{causal.JobAdmission, causal.JobQueueWait, causal.JobDispatch, causal.JobFail} {
		if !strings.Contains(out, want) {
			t.Errorf("auto-dump missing %q:\n%s", want, out)
		}
	}
}
