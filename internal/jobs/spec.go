// Package jobs turns the experiment registry into a multi-tenant job
// service: clients submit typed, validated JobSpecs, a bounded worker
// fleet executes them on per-tenant FIFO queues with round-robin dispatch
// and queue-cap backpressure, and a content-addressed result cache serves
// repeated queries without recomputation.
//
// The cache is sound because every run in this repository is
// seed-deterministic: the same (experiment, grid, seed, scale) always
// renders a bit-identical table, so a result is fully determined by the
// canonical spec plus the binary that computed it. Cache keys are
// SHA-256 over (build revision, canonical spec JSON); a new binary
// invalidates every entry by construction. Fields that provably cannot
// change output — the worker count, by the harness's worker-invariance
// contract — are excluded from the canonical form, so specs differing
// only in execution hints share one entry.
package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"broadcastic/internal/buildinfo"
	"broadcastic/internal/faults"
	"broadcastic/internal/sim"
)

// Admission limits enforced by Validate. They bound what one job may cost,
// not what the engines could run: a single service must stay responsive
// under arbitrary client input.
const (
	// MaxGridPoints caps the length of an Ns or Ks override.
	MaxGridPoints = 16
	// MaxN caps any universe-size override.
	MaxN = 1 << 20
	// MaxK caps any player-count override.
	MaxK = 4096
	// MaxWorkers caps the per-job worker hint.
	MaxWorkers = 1024
	// MaxFaultProb caps each fault probability: above it, retransmission
	// storms make run time balloon without measuring anything new.
	MaxFaultProb = 0.5
)

// JobSpec is one parameterized run request. The zero values of the
// optional fields mean "the experiment's EXPERIMENTS.md defaults".
type JobSpec struct {
	// Experiment is a sim registry ID ("E1".."E21").
	Experiment string `json:"experiment"`
	// Seed roots every random stream of the run; it is the only source of
	// nondeterminism, so (spec, binary) fully determines the result.
	Seed uint64 `json:"seed"`
	// Scale is "quick" or "full".
	Scale string `json:"scale"`
	// Ns and Ks override the experiment's sweep grid where sim.Caps says
	// the experiment honors them.
	Ns []int `json:"ns,omitempty"`
	Ks []int `json:"ks,omitempty"`
	// Faults overrides the networked experiment's fault mix
	// (internal/faults syntax; recoverable kinds only).
	Faults string `json:"faults,omitempty"`
	// Workers hints how many goroutines the run's sweeps may use
	// (0 = one per CPU). Execution-only: output is worker-invariant, so
	// this field is excluded from the cache key.
	Workers int `json:"workers,omitempty"`
}

// scale maps the spec's scale string to the sim constant.
func (s JobSpec) scale() (sim.Scale, error) {
	switch s.Scale {
	case "quick":
		return sim.Quick, nil
	case "full":
		return sim.Full, nil
	default:
		return 0, fmt.Errorf("jobs: unknown scale %q (want quick or full)", s.Scale)
	}
}

// experimentIDs is the registry's ID set, built once.
var experimentIDs = func() map[string]bool {
	ids := make(map[string]bool)
	for _, exp := range sim.Experiments() {
		ids[exp.ID] = true
	}
	return ids
}()

// Validate checks the spec strictly: unknown experiments, scales, grid
// overrides the experiment ignores, out-of-range values and
// determinism-breaking fault kinds are all rejected up front, so nothing
// invalid ever reaches a queue or a cache key.
func (s JobSpec) Validate() error {
	if !experimentIDs[s.Experiment] {
		return fmt.Errorf("jobs: unknown experiment %q", s.Experiment)
	}
	if _, err := s.scale(); err != nil {
		return err
	}
	if s.Workers < 0 || s.Workers > MaxWorkers {
		return fmt.Errorf("jobs: workers %d outside [0,%d]", s.Workers, MaxWorkers)
	}
	caps := sim.Caps(s.Experiment)
	if len(s.Ns) > 0 && !caps.Ns {
		return fmt.Errorf("jobs: experiment %s does not honor an n-grid override", s.Experiment)
	}
	if len(s.Ks) > 0 && !caps.Ks {
		return fmt.Errorf("jobs: experiment %s does not honor a k-grid override", s.Experiment)
	}
	if s.Faults != "" && !caps.Faults {
		return fmt.Errorf("jobs: experiment %s does not honor a fault-plan override", s.Experiment)
	}
	if len(s.Ns) > MaxGridPoints || len(s.Ks) > MaxGridPoints {
		return fmt.Errorf("jobs: grid override longer than %d points", MaxGridPoints)
	}
	for _, n := range s.Ns {
		if n < 8 || n > MaxN {
			return fmt.Errorf("jobs: n=%d outside [8,%d]", n, MaxN)
		}
	}
	for _, k := range s.Ks {
		if k < 2 || k > MaxK {
			return fmt.Errorf("jobs: k=%d outside [2,%d]", k, MaxK)
		}
	}
	if s.Faults != "" {
		plan, err := faults.Parse(s.Faults)
		if err != nil {
			return err
		}
		// Delay faults decide retransmissions by wall clock, crashes change
		// the answer itself: both would break the "result is a pure function
		// of the spec" contract the cache is built on.
		if plan.DelayProb > 0 {
			return fmt.Errorf("jobs: delay faults are wall-clock-dependent and not cacheable")
		}
		if len(plan.CrashTurns) > 0 {
			return fmt.Errorf("jobs: crash faults are not supported by the job service")
		}
		for _, pr := range []float64{plan.Drop, plan.Duplicate, plan.Corrupt} {
			if pr > MaxFaultProb {
				return fmt.Errorf("jobs: fault probability %v above service cap %v", pr, MaxFaultProb)
			}
		}
	}
	return nil
}

// canonicalSpec is the cache-key view of a spec: output-affecting fields
// only, in fixed declaration order, with the fault plan re-rendered through
// faults.Plan.String so syntactic variants ("dup=0.1,drop=0.2" vs
// "drop=0.2,dup=0.1") collapse to one encoding.
type canonicalSpec struct {
	Experiment string `json:"experiment"`
	Seed       uint64 `json:"seed"`
	Scale      string `json:"scale"`
	Ns         []int  `json:"ns,omitempty"`
	Ks         []int  `json:"ks,omitempty"`
	Faults     string `json:"faults,omitempty"`
}

// Canonical returns the spec's canonical JSON encoding — the byte string
// the cache key hashes. It fails only on a spec that Validate rejects.
func (s JobSpec) Canonical() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	c := canonicalSpec{
		Experiment: s.Experiment,
		Seed:       s.Seed,
		Scale:      s.Scale,
		Ns:         s.Ns,
		Ks:         s.Ks,
	}
	if s.Faults != "" {
		plan, err := faults.Parse(s.Faults)
		if err != nil {
			return nil, err
		}
		c.Faults = plan.String()
	}
	return json.Marshal(c)
}

// Key returns the content address of the spec's result under the given
// build identity: hex SHA-256 of buildSHA || 0x00 || canonical JSON.
func (s JobSpec) Key(buildSHA string) (string, error) {
	canon, err := s.Canonical()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(buildSHA))
	h.Write([]byte{0})
	h.Write(canon)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// BuildSHA resolves the running binary's identity for cache keying. It
// folds in the VCS revision, the dirty flag and the toolchain; unstamped
// binaries (tests, go run) fall back to the toolchain alone, which is the
// honest statement that their results should not outlive the process.
func BuildSHA() string {
	info := buildinfo.Resolve()
	sha := info.Revision
	if info.Modified {
		sha += "+dirty"
	}
	return sha + "@" + info.GoVersion
}
