package jobs

import (
	"strings"
	"testing"
)

func TestValidate(t *testing.T) {
	good := []JobSpec{
		{Experiment: "E1", Scale: "quick"},
		{Experiment: "E4", Seed: 99, Scale: "full", Workers: 8},
		{Experiment: "E1", Scale: "quick", Ns: []int{512, 2048}},
		{Experiment: "E2", Scale: "quick", Ks: []int{4, 16}},
		{Experiment: "E20", Scale: "quick", Ns: []int{256}, Ks: []int{4}, Faults: "drop=0.1,dup=0.05"},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", s, err)
		}
	}
	bad := []struct {
		spec JobSpec
		want string
	}{
		{JobSpec{Experiment: "E99", Scale: "quick"}, "unknown experiment"},
		{JobSpec{Experiment: "e1", Scale: "quick"}, "unknown experiment"},
		{JobSpec{Experiment: "E1", Scale: "medium"}, "unknown scale"},
		{JobSpec{Experiment: "E1", Scale: "quick", Workers: -1}, "workers"},
		{JobSpec{Experiment: "E1", Scale: "quick", Ks: []int{4}}, "does not honor a k-grid"},
		{JobSpec{Experiment: "E2", Scale: "quick", Ns: []int{512}}, "does not honor an n-grid"},
		{JobSpec{Experiment: "E4", Scale: "quick", Faults: "drop=0.1"}, "does not honor a fault-plan"},
		{JobSpec{Experiment: "E1", Scale: "quick", Ns: []int{4}}, "outside [8,"},
		{JobSpec{Experiment: "E1", Scale: "quick", Ns: []int{1 << 21}}, "outside [8,"},
		{JobSpec{Experiment: "E2", Scale: "quick", Ks: []int{1}}, "outside [2,"},
		{JobSpec{Experiment: "E1", Scale: "quick", Ns: make([]int, MaxGridPoints+1)}, "longer than"},
		{JobSpec{Experiment: "E20", Scale: "quick", Faults: "bogus"}, "faults"},
		{JobSpec{Experiment: "E20", Scale: "quick", Faults: "delay=0.1:5ms"}, "wall-clock"},
		{JobSpec{Experiment: "E20", Scale: "quick", Faults: "crash=1@2"}, "crash faults"},
		{JobSpec{Experiment: "E20", Scale: "quick", Faults: "drop=0.9"}, "above service cap"},
	}
	for _, tc := range bad {
		err := tc.spec.Validate()
		if err == nil {
			t.Errorf("Validate(%+v) accepted", tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Validate(%+v) = %q, want substring %q", tc.spec, err, tc.want)
		}
	}
}

func TestCanonicalIgnoresExecutionHints(t *testing.T) {
	a := JobSpec{Experiment: "E4", Seed: 7, Scale: "quick"}
	b := a
	b.Workers = 64
	ca, err := a.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(ca) != string(cb) {
		t.Errorf("worker hint leaked into canonical form:\n%s\n%s", ca, cb)
	}
}

func TestCanonicalNormalizesFaultSyntax(t *testing.T) {
	a := JobSpec{Experiment: "E20", Seed: 1, Scale: "quick", Faults: "dup=0.05,drop=0.1"}
	b := JobSpec{Experiment: "E20", Seed: 1, Scale: "quick", Faults: "drop=0.1,dup=0.05"}
	ka, err := a.Key("sha")
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.Key("sha")
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Errorf("reordered fault syntax changed the key: %s vs %s", ka, kb)
	}
}

func TestKeySeparatesSpecsAndBuilds(t *testing.T) {
	base := JobSpec{Experiment: "E4", Seed: 7, Scale: "quick"}
	kBase, err := base.Key("build-a")
	if err != nil {
		t.Fatal(err)
	}
	if len(kBase) != 64 {
		t.Fatalf("key %q is not hex SHA-256", kBase)
	}
	variants := []JobSpec{
		{Experiment: "E5", Seed: 7, Scale: "quick"},
		{Experiment: "E4", Seed: 8, Scale: "quick"},
		{Experiment: "E4", Seed: 7, Scale: "full"},
	}
	for _, v := range variants {
		kv, err := v.Key("build-a")
		if err != nil {
			t.Fatal(err)
		}
		if kv == kBase {
			t.Errorf("distinct spec %+v collided with base key", v)
		}
	}
	// A binary change must invalidate: same spec, different build SHA.
	kOther, err := base.Key("build-b")
	if err != nil {
		t.Fatal(err)
	}
	if kOther == kBase {
		t.Error("build SHA did not enter the key")
	}
	if _, err := (JobSpec{Experiment: "nope", Scale: "quick"}).Key("x"); err == nil {
		t.Error("invalid spec produced a key")
	}
}

func TestBuildSHANonEmpty(t *testing.T) {
	if BuildSHA() == "" {
		t.Error("BuildSHA is empty even of toolchain identity")
	}
}
