package jobs

import (
	"bytes"
	"fmt"

	"broadcastic/internal/sim"
)

// RunExperiment is the default Runner: it resolves the spec's experiment
// in the sim registry, runs it with the spec's parameters, and returns
// the rendered table — the same bytes cmd/experiments would print for the
// same configuration, which is what makes cached and recomputed results
// interchangeable.
func RunExperiment(spec JobSpec, rc RunContext) ([]byte, error) {
	scale, err := spec.scale()
	if err != nil {
		return nil, err
	}
	var exp sim.Experiment
	for _, e := range sim.Experiments() {
		if e.ID == spec.Experiment {
			exp = e
			break
		}
	}
	if exp.Run == nil {
		return nil, fmt.Errorf("jobs: unknown experiment %q", spec.Experiment)
	}
	cfg := sim.Config{
		Seed:     spec.Seed,
		Scale:    scale,
		Workers:  spec.Workers,
		Recorder: rc.Recorder,
		Progress: rc.Progress,
		Causal:   rc.Causal,
		Params:   sim.Params{Ns: spec.Ns, Ks: spec.Ks, Faults: spec.Faults},
	}
	tbl, err := exp.Run(cfg)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
