package jobs

import (
	"container/list"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"broadcastic/internal/telemetry"
)

// Cache is the content-addressed result store: an in-memory LRU over
// rendered result bytes, keyed by JobSpec.Key, with an optional disk
// spill directory. Every Put writes through to the spill, so results
// survive process restarts: NewCache warms the LRU from the directory
// (most recent first, up to the caps), and a restarted service answers
// prior submissions without dispatching a worker. All methods are safe
// for concurrent use.
//
// The spill is best-effort by design: a result lost to an I/O error is
// merely recomputed, so write and read failures degrade to cache misses
// instead of surfacing. Keys are hex SHA-256 strings, so they are safe
// filenames on every platform.
type Cache struct {
	mu       sync.Mutex
	entries  int   // max resident entries (>0)
	maxBytes int64 // max resident bytes (0 = unbounded)
	bytes    int64
	ll       *list.List // front = most recently used
	byKey    map[string]*list.Element
	dir      string // spill directory ("" = memory only)
	rec      telemetry.Recorder
}

type cacheEntry struct {
	key string
	val []byte
}

// NewCache builds a cache holding at most entries results and, when
// maxBytes > 0, at most that many result bytes in memory. dir, when
// non-empty, must be an existing directory; every stored result persists
// there, spilled results are read back on a memory miss, and previously
// spilled results are warmed into the LRU at construction. rec (nil ok)
// receives the hit/miss/eviction/bytes counters declared in
// telemetry/names.go.
func NewCache(entries int, maxBytes int64, dir string, rec telemetry.Recorder) *Cache {
	if entries < 1 {
		entries = 1
	}
	c := &Cache{
		entries:  entries,
		maxBytes: maxBytes,
		ll:       list.New(),
		byKey:    make(map[string]*list.Element),
		dir:      dir,
		rec:      rec,
	}
	if dir != "" {
		c.warmFromSpill()
	}
	return c
}

// warmFromSpill preloads the LRU from the spill directory at boot: the
// most recently written results first (write-through refreshes a file on
// every store, so mtime approximates recency), stopping at the entry and
// byte caps. Unreadable files are skipped — they will surface as misses
// and be recomputed.
func (c *Cache) warmFromSpill() {
	des, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	type spilled struct {
		key  string
		mod  time.Time
		size int64
	}
	var files []spilled
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".result") {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		files = append(files, spilled{
			key:  strings.TrimSuffix(name, ".result"),
			mod:  info.ModTime(),
			size: info.Size(),
		})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod.After(files[j].mod) })
	for _, f := range files {
		if c.ll.Len() >= c.entries ||
			(c.maxBytes > 0 && c.ll.Len() > 0 && c.bytes+f.size > c.maxBytes) {
			break
		}
		val, err := os.ReadFile(c.spillPath(f.key))
		if err != nil {
			continue
		}
		c.byKey[f.key] = c.ll.PushBack(&cacheEntry{key: f.key, val: val})
		c.bytes += int64(len(val))
		telemetry.Count(c.rec, telemetry.JobsCacheBytes, int64(len(val)))
	}
}

// Get returns a copy of the cached result for key. Memory is consulted
// first, then the disk spill; a spill hit is promoted back into memory.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		val := append([]byte(nil), el.Value.(*cacheEntry).val...)
		c.mu.Unlock()
		telemetry.Count(c.rec, telemetry.JobsCacheHits, 1)
		return val, true
	}
	dir := c.dir
	c.mu.Unlock()
	if dir != "" {
		if val, err := os.ReadFile(c.spillPath(key)); err == nil {
			telemetry.Count(c.rec, telemetry.JobsCacheDiskHits, 1)
			c.Put(key, val)
			return val, true
		}
	}
	telemetry.Count(c.rec, telemetry.JobsCacheMisses, 1)
	return nil, false
}

// Put stores the result under key — writing through to the spill
// directory when one is configured, so the result survives restarts —
// and evicts least-recently-used entries until the entry and byte caps
// hold (their disk copies remain). Storing an existing key refreshes its
// recency and its spill file's mtime.
func (c *Cache) Put(key string, val []byte) {
	val = append([]byte(nil), val...)
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.bytes += int64(len(val)) - int64(len(ent.val))
		telemetry.Count(c.rec, telemetry.JobsCacheBytes, int64(len(val))-int64(len(ent.val)))
		ent.val = val
		c.ll.MoveToFront(el)
	} else {
		c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
		c.bytes += int64(len(val))
		telemetry.Count(c.rec, telemetry.JobsCacheBytes, int64(len(val)))
	}
	for c.ll.Len() > c.entries || (c.maxBytes > 0 && c.bytes > c.maxBytes && c.ll.Len() > 1) {
		el := c.ll.Back()
		ent := el.Value.(*cacheEntry)
		c.ll.Remove(el)
		delete(c.byKey, ent.key)
		c.bytes -= int64(len(ent.val))
		telemetry.Count(c.rec, telemetry.JobsCacheBytes, -int64(len(ent.val)))
		telemetry.Count(c.rec, telemetry.JobsCacheEvictions, 1)
	}
	c.mu.Unlock()
	// Write-through outside the lock: val is this call's private copy
	// (entries swap value slices, never mutate them), so no lock is
	// needed and evicted entries need no separate write — their own Put
	// already persisted them.
	c.spillWrite(key, val)
}

// spillWrite persists an entry atomically: a concurrent Get must see
// either no file or complete bytes, never a truncated write, so the
// value lands under a unique temp name and is renamed into place.
func (c *Cache) spillWrite(key string, val []byte) {
	if c.dir == "" {
		return
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(val)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		_ = os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), c.spillPath(key)); err != nil {
		_ = os.Remove(tmp.Name())
	}
}

// Len reports the number of resident (in-memory) entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes reports the resident result bytes.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

func (c *Cache) spillPath(key string) string {
	return filepath.Join(c.dir, key+".result")
}
