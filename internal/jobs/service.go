package jobs

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"broadcastic/internal/pool"
	"broadcastic/internal/telemetry"
	"broadcastic/internal/telemetry/causal"
)

// State is a job's lifecycle phase.
type State string

// Job states. Queued and Running are transient; the rest are terminal.
// A Canceled job whose run was already in flight finishes in the
// background (the engines have no preemption points) and still populates
// the cache — the computation is valid, the client just stopped wanting it.
const (
	Queued   State = "queued"
	Running  State = "running"
	Done     State = "done"
	Failed   State = "failed"
	Canceled State = "canceled"
)

// ErrQueueFull is the backpressure signal: the submitting tenant's queue
// is at capacity. It is retryable — the HTTP layer maps it to 429 with a
// Retry-After hint — and scoped per tenant, so one tenant saturating its
// queue never blocks another's submissions.
var ErrQueueFull = errors.New("jobs: tenant queue full, retry later")

// ErrClosed reports a submission to a service that has been shut down.
var ErrClosed = errors.New("jobs: service closed")

// RunContext bundles everything a Runner receives beyond the spec: the
// metrics recorder, the progress hook, and the causal context whose parent
// is the job's execute span. All fields may be zero.
type RunContext struct {
	Recorder telemetry.Recorder
	Progress func(done, total int)
	Causal   causal.Context
}

// Runner executes one validated spec and returns the rendered result
// bytes. Options.Run defaults to RunExperiment; tests substitute slow or
// counting runners.
type Runner func(spec JobSpec, rc RunContext) ([]byte, error)

// Options configures a Service.
type Options struct {
	// Workers is the fleet size (0 = one per CPU, via pool.Workers).
	// Each worker runs at most one job at a time; the jobs themselves
	// parallelize their sweeps on the shared pool machinery.
	Workers int
	// QueueCap bounds each tenant's FIFO queue (0 = DefaultQueueCap).
	QueueCap int
	// Cache, when non-nil, serves and stores results content-addressed.
	Cache *Cache
	// BuildSHA keys the cache to a binary identity ("" = BuildSHA()).
	BuildSHA string
	// Recorder receives job counters and per-job spans (nil ok).
	Recorder telemetry.Recorder
	// Progress, when non-nil, builds the per-job progress hook handed to
	// the runner — the daemon wires serve.Broker.ProgressFunc here so
	// jobs stream on /runs without this package importing the HTTP layer.
	Progress func(jobID, experiment string) func(done, total int)
	// Flight, when non-nil, is the causal flight recorder the service's
	// traces live in. SubmitTraced contexts must be minted from it (the
	// HTTP layer does so via Service.Flight at admission).
	Flight *causal.Recorder
	// Run executes specs (nil = RunExperiment).
	Run Runner
}

// DefaultQueueCap is the per-tenant queue bound when Options.QueueCap is 0.
const DefaultQueueCap = 16

// Job is the immutable snapshot of one submission, as returned by Submit,
// Get, Cancel and List and rendered on the HTTP API.
type Job struct {
	ID       string  `json:"id"`
	Tenant   string  `json:"tenant"`
	Spec     JobSpec `json:"spec"`
	Key      string  `json:"key"`
	State    State   `json:"state"`
	CacheHit bool    `json:"cacheHit"`
	// Result is the rendered experiment table (UTF-8 text), present once
	// State is Done.
	Result string `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
	// TraceID is the causal trace the job's spans record under (16 hex
	// digits), present when the submission was traced — the handle clients
	// pass to /debug/flightrecorder?trace=.
	TraceID string `json:"traceId,omitempty"`
	// Timestamps in Unix milliseconds; zero when not reached.
	SubmittedMs int64 `json:"submittedMs"`
	StartedMs   int64 `json:"startedMs,omitempty"`
	FinishedMs  int64 `json:"finishedMs,omitempty"`
}

// job is the mutable record behind the mu lock.
type job struct {
	Job
	cancelled bool // set by Cancel; a running job finishes but stays Canceled
	cause     causal.Context
	queueSpan causal.Span // submit -> dispatch; never ended if canceled while queued
	submitted time.Time   // monotonic submit instant, for queue-wait observation
}

// tenantMetrics caches one tenant's pre-rendered labeled metric names and
// its cache hit/miss tally (for the hit-ratio gauge). Counts are atomics
// so the hot submit path never takes a second lock.
type tenantMetrics struct {
	submitted  string
	rejected   string
	cacheHits  string
	queueDepth string
	waitNs     string
	bitsServed string
	hitRatio   string
	hits       atomic.Int64
	misses     atomic.Int64
}

// Service schedules jobs over per-tenant FIFO queues onto a bounded
// worker fleet, with fair round-robin dispatch across tenants and a
// content-addressed cache in front of the workers.
type Service struct {
	opts     Options
	queueCap int
	buildSHA string

	mu      sync.Mutex
	cond    *sync.Cond
	queues  map[string][]*job // tenant -> FIFO of queued jobs
	ring    []string          // tenants in first-submit order
	ringPos int               // next tenant to inspect, for round-robin
	jobs    map[string]*job
	nextID  int
	queued  int // jobs across all queues, for the global depth gauge
	closed  bool
	wg      sync.WaitGroup

	tenantMu sync.Mutex
	tenants  map[string]*tenantMetrics
}

// Flight returns the causal flight recorder the service records into
// (nil when tracing is disabled).
func (s *Service) Flight() *causal.Recorder { return s.opts.Flight }

// tenant returns (lazily building) the tenant's cached metric names.
func (s *Service) tenant(t string) *tenantMetrics {
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	tm := s.tenants[t]
	if tm == nil {
		tm = &tenantMetrics{
			submitted:  telemetry.Labeled(telemetry.JobsTenantSubmitted, "tenant", t),
			rejected:   telemetry.Labeled(telemetry.JobsTenantRejected, "tenant", t),
			cacheHits:  telemetry.Labeled(telemetry.JobsTenantCacheHits, "tenant", t),
			queueDepth: telemetry.Labeled(telemetry.JobsQueueDepth, "tenant", t),
			waitNs:     telemetry.Labeled(telemetry.JobsQueueWaitNs, "tenant", t),
			bitsServed: telemetry.Labeled(telemetry.JobsBitsServed, "tenant", t),
			hitRatio:   telemetry.Labeled(telemetry.JobsCacheHitRatio, "tenant", t),
		}
		s.tenants[t] = tm
	}
	return tm
}

// recordLookup tallies one cache consult for the tenant and refreshes its
// hit-ratio gauge.
func (s *Service) recordLookup(tm *tenantMetrics, hit bool) {
	if hit {
		tm.hits.Add(1)
		telemetry.Count(s.opts.Recorder, tm.cacheHits, 1)
	} else {
		tm.misses.Add(1)
	}
	h, m := tm.hits.Load(), tm.misses.Load()
	telemetry.Gauge(s.opts.Recorder, tm.hitRatio, float64(h)/float64(h+m))
}

// depthGaugesLocked refreshes the tenant's and the global queue-depth
// gauges. Callers hold mu.
func (s *Service) depthGaugesLocked(tm *tenantMetrics, tenant string) {
	telemetry.Gauge(s.opts.Recorder, tm.queueDepth, float64(len(s.queues[tenant])))
	telemetry.Gauge(s.opts.Recorder, telemetry.JobsQueueDepth, float64(s.queued))
}

// recordBitsServed counts a result's bits toward the fleet and tenant
// totals.
func (s *Service) recordBitsServed(tm *tenantMetrics, resultBytes int) {
	bits := int64(resultBytes) * 8
	telemetry.Count(s.opts.Recorder, telemetry.JobsBitsServed, bits)
	telemetry.Count(s.opts.Recorder, tm.bitsServed, bits)
}

// New starts a service and its worker fleet. Callers must Close it.
func New(opts Options) *Service {
	if opts.Run == nil {
		opts.Run = RunExperiment
	}
	if opts.BuildSHA == "" {
		opts.BuildSHA = BuildSHA()
	}
	cap := opts.QueueCap
	if cap <= 0 {
		cap = DefaultQueueCap
	}
	s := &Service{
		opts:     opts,
		queueCap: cap,
		buildSHA: opts.BuildSHA,
		queues:   make(map[string][]*job),
		jobs:     make(map[string]*job),
		tenants:  make(map[string]*tenantMetrics),
	}
	s.cond = sync.NewCond(&s.mu)
	for w := 0; w < pool.Workers(opts.Workers); w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Close stops the fleet: workers finish their in-flight jobs and exit;
// still-queued jobs are marked Canceled. Submit afterwards returns
// ErrClosed. Close blocks until every worker has returned.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	now := nowMs()
	for tenant, q := range s.queues {
		for _, j := range q {
			j.State = Canceled
			j.FinishedMs = now
			telemetry.Count(s.opts.Recorder, telemetry.JobsCanceled, 1)
			j.cause.Event(causal.JobCanceled, causal.String("job", j.ID), causal.String("reason", "service closed"))
		}
		s.queued -= len(q)
		s.queues[tenant] = nil
		s.depthGaugesLocked(s.tenant(tenant), tenant)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// Submit validates the spec, consults the cache, and either answers
// immediately (cache hit: the job is born Done with CacheHit set and no
// worker is dispatched) or enqueues on the tenant's FIFO. A full tenant
// queue rejects with ErrQueueFull without touching other tenants.
func (s *Service) Submit(tenant string, spec JobSpec) (Job, error) {
	return s.SubmitTraced(tenant, spec, causal.Context{})
}

// SubmitTraced is Submit under a causal context (minted from the
// service's Flight recorder at admission; the zero Context is untraced).
// Rejections record a jobs.rejected fault on the trace; accepted jobs
// carry the trace through queue wait, dispatch, execution and outcome.
func (s *Service) SubmitTraced(tenant string, spec JobSpec, cause causal.Context) (Job, error) {
	if tenant == "" {
		cause.Fault(causal.JobRejected, causal.String("reason", "empty tenant"))
		return Job{}, fmt.Errorf("jobs: empty tenant")
	}
	if err := spec.Validate(); err != nil {
		cause.Fault(causal.JobRejected, causal.String("reason", err.Error()))
		return Job{}, err
	}
	key, err := spec.Key(s.buildSHA)
	if err != nil {
		cause.Fault(causal.JobRejected, causal.String("reason", err.Error()))
		return Job{}, err
	}

	tm := s.tenant(tenant)
	var cached []byte
	hit := false
	if s.opts.Cache != nil {
		cached, hit = s.opts.Cache.Get(key)
		s.recordLookup(tm, hit)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cause.Fault(causal.JobRejected, causal.String("reason", "service closed"))
		return Job{}, ErrClosed
	}
	if !hit && len(s.queues[tenant]) >= s.queueCap {
		s.mu.Unlock()
		telemetry.Count(s.opts.Recorder, telemetry.JobsRejected, 1)
		telemetry.Count(s.opts.Recorder, tm.rejected, 1)
		cause.Fault(causal.JobRejected, causal.String("reason", "queue full"))
		return Job{}, fmt.Errorf("%w (tenant %q, cap %d)", ErrQueueFull, tenant, s.queueCap)
	}
	s.nextID++
	j := &job{
		Job: Job{
			ID:          fmt.Sprintf("j%06d", s.nextID),
			Tenant:      tenant,
			Spec:        spec,
			Key:         key,
			SubmittedMs: nowMs(),
		},
		cause:     cause,
		submitted: time.Now(),
	}
	if cause.Enabled() {
		j.TraceID = cause.Trace().String()
	}
	s.jobs[j.ID] = j
	if hit {
		j.State = Done
		j.CacheHit = true
		j.Result = string(cached)
		j.FinishedMs = j.SubmittedMs
		cause.Event(causal.JobCacheHit, causal.String("job", j.ID))
	} else {
		j.State = Queued
		if _, seen := s.queues[tenant]; !seen {
			s.ring = append(s.ring, tenant)
		}
		s.queues[tenant] = append(s.queues[tenant], j)
		s.queued++
		// The queue-wait span opens here and closes when a worker picks the
		// job up; a job canceled while queued never ends it, so only
		// dispatched jobs contribute queue-wait records and observations.
		j.queueSpan = cause.StartSpan(causal.JobQueueWait, causal.String("job", j.ID))
		s.depthGaugesLocked(tm, tenant)
		s.cond.Signal()
	}
	view := j.Job
	s.mu.Unlock()
	telemetry.Count(s.opts.Recorder, telemetry.JobsSubmitted, 1)
	telemetry.Count(s.opts.Recorder, tm.submitted, 1)
	if hit {
		s.recordBitsServed(tm, len(cached))
	}
	return view, nil
}

// Get returns the job's current snapshot.
func (s *Service) Get(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return j.Job, true
}

// List returns every known job, in submission order.
func (s *Service) List() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.jobs))
	for i := 1; i <= s.nextID; i++ {
		if j, ok := s.jobs[fmt.Sprintf("j%06d", i)]; ok {
			out = append(out, j.Job)
		}
	}
	return out
}

// Cancel stops a job: a queued job leaves its queue immediately; a
// running job is marked Canceled but its computation completes in the
// background (and still feeds the cache). Terminal jobs are unchanged.
func (s *Service) Cancel(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	switch j.State {
	case Queued:
		q := s.queues[j.Tenant]
		for i, qj := range q {
			if qj == j {
				s.queues[j.Tenant] = append(q[:i:i], q[i+1:]...)
				s.queued--
				break
			}
		}
		j.State = Canceled
		j.cancelled = true
		j.FinishedMs = nowMs()
		telemetry.Count(s.opts.Recorder, telemetry.JobsCanceled, 1)
		s.depthGaugesLocked(s.tenant(j.Tenant), j.Tenant)
		// The queue-wait span is deliberately never ended: a canceled-while-
		// queued job was never dispatched, so it contributes no wait record.
		j.cause.Event(causal.JobCanceled, causal.String("job", j.ID), causal.String("reason", "client cancel"))
	case Running:
		j.State = Canceled
		j.cancelled = true
		telemetry.Count(s.opts.Recorder, telemetry.JobsCanceled, 1)
		// The worker emits the causal jobs.canceled event when the in-flight
		// run finishes, keeping the trace's event order causal.
	}
	return j.Job, true
}

// QueueDepth reports the tenant's current queue length (tests, /metrics
// consumers derive global depth from the counters instead).
func (s *Service) QueueDepth(tenant string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queues[tenant])
}

// worker is one fleet goroutine: block for work, dispatch round-robin,
// execute outside the lock, publish the outcome.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var j *job
		for {
			if s.closed {
				s.mu.Unlock()
				return
			}
			if j = s.popLocked(); j != nil {
				break
			}
			s.cond.Wait()
		}
		j.State = Running
		j.StartedMs = nowMs()
		wait := time.Since(j.submitted)
		id, tenant, spec := j.ID, j.Tenant, j.Spec
		cause := j.cause
		tm := s.tenant(tenant)
		s.depthGaugesLocked(tm, tenant)
		j.queueSpan.End()
		s.mu.Unlock()

		// Queue wait is observed exactly once per dispatched job, at
		// dispatch; canceled-while-queued jobs never reach this point.
		telemetry.Observe(s.opts.Recorder, telemetry.JobsQueueWaitNs, float64(wait))
		telemetry.Observe(s.opts.Recorder, tm.waitNs, float64(wait))
		cause.Event(causal.JobDispatch, causal.String("job", id))

		var progress func(done, total int)
		if s.opts.Progress != nil {
			progress = s.opts.Progress(id, spec.Experiment)
		}
		span := telemetry.StartSpan(s.opts.Recorder, telemetry.JobsJobNs)
		exec := cause.StartSpan(causal.JobExecute,
			causal.String("job", id), causal.String("experiment", spec.Experiment))
		result, err := s.opts.Run(spec, RunContext{
			Recorder: s.opts.Recorder,
			Progress: progress,
			Causal:   exec.Context(),
		})
		exec.End()
		span.End()

		if err == nil && s.opts.Cache != nil {
			s.opts.Cache.Put(j.Key, result)
		}
		s.mu.Lock()
		now := nowMs()
		if j.cancelled {
			// State stays Canceled; the result went to the cache above, so
			// the computation is not wasted, but the client asked us not to
			// report it.
			j.FinishedMs = now
			cause.Event(causal.JobCanceled, causal.String("job", id), causal.String("reason", "canceled while running"))
		} else if err != nil {
			j.State = Failed
			j.Error = err.Error()
			j.FinishedMs = now
			telemetry.Count(s.opts.Recorder, telemetry.JobsFailed, 1)
			// Fail marks the fault instant and triggers the flight
			// recorder's at-most-once auto-dump for this trace.
			cause.Fail(causal.JobFail, causal.String("job", id), causal.String("error", err.Error()))
		} else {
			j.State = Done
			j.Result = string(result)
			j.FinishedMs = now
			telemetry.Count(s.opts.Recorder, telemetry.JobsCompleted, 1)
			s.recordBitsServed(tm, len(result))
			cause.Event(causal.JobDone, causal.Int("bytes", len(result)))
		}
		s.mu.Unlock()
	}
}

// popLocked dequeues the next job fairly: scan tenants round-robin from
// ringPos, take the head of the first non-empty queue, and remember where
// to resume so one chatty tenant cannot starve the rest. Callers hold mu.
func (s *Service) popLocked() *job {
	for off := 0; off < len(s.ring); off++ {
		i := (s.ringPos + off) % len(s.ring)
		tenant := s.ring[i]
		if q := s.queues[tenant]; len(q) > 0 {
			s.queues[tenant] = q[1:]
			s.queued--
			s.ringPos = (i + 1) % len(s.ring)
			return q[0]
		}
	}
	return nil
}

func nowMs() int64 { return time.Now().UnixMilli() }
