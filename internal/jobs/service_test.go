package jobs

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"broadcastic/internal/telemetry"
)

func waitTerminal(t *testing.T, s *Service, id string) Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := s.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		switch j.State {
		case Done, Failed, Canceled:
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	j, _ := s.Get(id)
	t.Fatalf("job %s stuck in state %s", id, j.State)
	return Job{}
}

// TestDeterministicCacheHit is the tentpole acceptance pin: submitting the
// same JobSpec twice returns byte-identical results, with the second
// served from cache — hit counter incremented, no worker dispatched — and
// the key includes the build SHA, so a binary change recomputes.
func TestDeterministicCacheHit(t *testing.T) {
	col := telemetry.NewCollector()
	var runs atomic.Int64
	counting := func(spec JobSpec, rc RunContext) ([]byte, error) {
		runs.Add(1)
		return RunExperiment(spec, rc)
	}
	cache := NewCache(16, 0, "", col)
	svc := New(Options{Workers: 1, Cache: cache, BuildSHA: "build-a", Recorder: col, Run: counting})
	defer svc.Close()

	spec := JobSpec{Experiment: "E10", Seed: 5, Scale: "quick"}
	first, err := svc.Submit("acme", spec)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("cold submission reported a cache hit")
	}
	first = waitTerminal(t, svc, first.ID)
	if first.State != Done || first.Result == "" {
		t.Fatalf("first job = %+v", first)
	}
	// The service's result is the same bytes a direct run renders.
	direct, err := RunExperiment(spec, RunContext{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal([]byte(first.Result), direct) {
		t.Errorf("service result diverges from direct run:\n%s---\n%s", first.Result, direct)
	}

	second, err := svc.Submit("acme", spec)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit || second.State != Done {
		t.Fatalf("second submission not served from cache: %+v", second)
	}
	if second.Result != first.Result {
		t.Error("cached result is not byte-identical to the computed one")
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("runner invoked %d times, want 1 (no worker dispatched on hit)", got)
	}
	if got := col.Counter(telemetry.JobsCacheHits); got != 1 {
		t.Errorf("cache hit counter = %d, want 1", got)
	}

	// A different build identity misses the shared cache and recomputes —
	// to the same bytes, because the spec pins the computation.
	svcB := New(Options{Workers: 1, Cache: cache, BuildSHA: "build-b", Recorder: col, Run: counting})
	defer svcB.Close()
	third, err := svcB.Submit("acme", spec)
	if err != nil {
		t.Fatal(err)
	}
	if third.CacheHit {
		t.Fatal("new build SHA hit the old build's entry")
	}
	third = waitTerminal(t, svcB, third.ID)
	if third.State != Done || third.Result != first.Result {
		t.Fatalf("recomputed-under-new-build job = %+v", third)
	}
	if got := runs.Load(); got != 2 {
		t.Errorf("runner invoked %d times, want 2", got)
	}
}

// TestRestartedServiceServesFromSpill is the cache-persistence
// acceptance pin: a service computes a result into a spill-backed cache,
// shuts down, and a freshly started service over the same directory
// serves the identical result as a cache hit — born Done, no worker
// dispatched, runner never invoked.
func TestRestartedServiceServesFromSpill(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int64
	counting := func(spec JobSpec, _ RunContext) ([]byte, error) {
		runs.Add(1)
		return []byte("computed-" + spec.Experiment), nil
	}
	spec := JobSpec{Experiment: "E10", Seed: 5, Scale: "quick"}

	first := New(Options{Workers: 1, Cache: NewCache(8, 0, dir, nil),
		BuildSHA: "build-a", Run: counting})
	before, err := first.Submit("acme", spec)
	if err != nil {
		t.Fatal(err)
	}
	before = waitTerminal(t, first, before.ID)
	if before.State != Done || before.CacheHit {
		t.Fatalf("cold job = %+v", before)
	}
	first.Close()
	if got := runs.Load(); got != 1 {
		t.Fatalf("runner invoked %d times before restart, want 1", got)
	}

	col := telemetry.NewCollector()
	second := New(Options{Workers: 1, Cache: NewCache(8, 0, dir, col),
		BuildSHA: "build-a", Recorder: col, Run: counting})
	defer second.Close()
	after, err := second.Submit("acme", spec)
	if err != nil {
		t.Fatal(err)
	}
	if !after.CacheHit || after.State != Done {
		t.Fatalf("restarted service did not serve from warm cache: %+v", after)
	}
	if after.Result != before.Result {
		t.Errorf("restarted result %q != original %q", after.Result, before.Result)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("runner invoked %d times, want 1 (restart must not dispatch a worker)", got)
	}
	if got := col.Counter(telemetry.JobsCacheHits); got != 1 {
		t.Errorf("cache hit counter = %d, want 1", got)
	}
}

// blockingRunner parks every job until released, and records start order.
type blockingRunner struct {
	mu       sync.Mutex
	started  []uint64 // spec seeds, in execution order
	startCh  chan uint64
	release  chan struct{}
	releaser sync.Once
}

func newBlockingRunner() *blockingRunner {
	return &blockingRunner{startCh: make(chan uint64, 64), release: make(chan struct{})}
}

// releaseAll unparks every current and future run; safe to call twice.
// Tests must call it (usually deferred) before Service.Close, or a test
// failure would leave workers parked and Close waiting on them forever.
func (b *blockingRunner) releaseAll() {
	b.releaser.Do(func() { close(b.release) })
}

func (b *blockingRunner) run(spec JobSpec, _ RunContext) ([]byte, error) {
	b.mu.Lock()
	b.started = append(b.started, spec.Seed)
	b.mu.Unlock()
	b.startCh <- spec.Seed
	<-b.release
	return []byte("result"), nil
}

func (b *blockingRunner) waitStart(t *testing.T) uint64 {
	t.Helper()
	select {
	case seed := <-b.startCh:
		return seed
	case <-time.After(10 * time.Second):
		t.Fatal("no job started")
		return 0
	}
}

// TestBackpressurePerTenant is the backpressure acceptance pin: with queue
// cap Q and saturated workers, submission Q+1 for a tenant is rejected
// with a retryable error while another tenant's submission still lands.
func TestBackpressurePerTenant(t *testing.T) {
	const capQ = 2
	col := telemetry.NewCollector()
	br := newBlockingRunner()
	svc := New(Options{Workers: 1, QueueCap: capQ, Recorder: col, Run: br.run})
	defer func() {
		br.releaseAll()
		svc.Close()
	}()

	// Seed 1 occupies the lone worker; the queue is empty again.
	if _, err := svc.Submit("noisy", JobSpec{Experiment: "E10", Seed: 1, Scale: "quick"}); err != nil {
		t.Fatal(err)
	}
	br.waitStart(t)
	// Fill the tenant's queue to its cap.
	for seed := uint64(2); seed < 2+capQ; seed++ {
		if _, err := svc.Submit("noisy", JobSpec{Experiment: "E10", Seed: seed, Scale: "quick"}); err != nil {
			t.Fatalf("submission below cap rejected: %v", err)
		}
	}
	if got := svc.QueueDepth("noisy"); got != capQ {
		t.Fatalf("queue depth = %d, want %d", got, capQ)
	}
	// Submission Q+1: rejected, retryable, typed.
	_, err := svc.Submit("noisy", JobSpec{Experiment: "E10", Seed: 99, Scale: "quick"})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-cap submission error = %v, want ErrQueueFull", err)
	}
	if got := col.Counter(telemetry.JobsRejected); got != 1 {
		t.Errorf("rejected counter = %d", got)
	}
	// Another tenant is unaffected by the noisy tenant's full queue.
	if _, err := svc.Submit("quiet", JobSpec{Experiment: "E10", Seed: 50, Scale: "quick"}); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
}

// TestRoundRobinFairness pins the dispatch order: with tenant A holding a
// deep queue, tenant B's first job runs before A's backlog drains.
func TestRoundRobinFairness(t *testing.T) {
	br := newBlockingRunner()
	svc := New(Options{Workers: 1, QueueCap: 8, Run: br.run})
	defer func() {
		br.releaseAll()
		svc.Close()
	}()

	first, err := svc.Submit("a", JobSpec{Experiment: "E10", Seed: 1, Scale: "quick"})
	if err != nil {
		t.Fatal(err)
	}
	br.waitStart(t) // a/1 on the worker; now build the queues behind it
	ids := []string{first.ID}
	for seed := uint64(2); seed <= 4; seed++ {
		j, err := svc.Submit("a", JobSpec{Experiment: "E10", Seed: seed, Scale: "quick"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	j, err := svc.Submit("b", JobSpec{Experiment: "E10", Seed: 100, Scale: "quick"})
	if err != nil {
		t.Fatal(err)
	}
	ids = append(ids, j.ID)

	br.releaseAll()
	for _, id := range ids {
		waitTerminal(t, svc, id)
	}
	br.mu.Lock()
	order := append([]uint64(nil), br.started...)
	br.mu.Unlock()
	// When a/1 was popped the ring held only tenant a, so a's turn pointer
	// still owes it one slot: a/2 runs, then strict alternation puts b/100
	// ahead of the rest of a's backlog.
	want := []uint64{1, 2, 100, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("execution order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v (tenant b starved)", order, want)
		}
	}
}

func TestCancel(t *testing.T) {
	col := telemetry.NewCollector()
	br := newBlockingRunner()
	svc := New(Options{Workers: 1, QueueCap: 8, Recorder: col, Run: br.run})
	defer func() {
		br.releaseAll()
		svc.Close()
	}()

	running, err := svc.Submit("t", JobSpec{Experiment: "E10", Seed: 1, Scale: "quick"})
	if err != nil {
		t.Fatal(err)
	}
	br.waitStart(t)
	queued, err := svc.Submit("t", JobSpec{Experiment: "E10", Seed: 2, Scale: "quick"})
	if err != nil {
		t.Fatal(err)
	}

	// A queued job cancels out of the queue entirely.
	j, ok := svc.Cancel(queued.ID)
	if !ok || j.State != Canceled {
		t.Fatalf("cancel queued = %+v, %v", j, ok)
	}
	if got := svc.QueueDepth("t"); got != 0 {
		t.Errorf("queue depth after cancel = %d", got)
	}
	// A running job is marked canceled; its run completes in background.
	j, ok = svc.Cancel(running.ID)
	if !ok || j.State != Canceled {
		t.Fatalf("cancel running = %+v, %v", j, ok)
	}
	br.releaseAll()
	j = waitTerminal(t, svc, running.ID)
	if j.State != Canceled || j.Result != "" {
		t.Errorf("canceled running job finished as %+v", j)
	}
	if _, ok := svc.Cancel("j999999"); ok {
		t.Error("cancel of unknown job reported ok")
	}
	if got := col.Counter(telemetry.JobsCanceled); got != 2 {
		t.Errorf("canceled counter = %d", got)
	}
	// The queued job never ran.
	br.mu.Lock()
	ran := len(br.started)
	br.mu.Unlock()
	if ran != 1 {
		t.Errorf("%d jobs ran, want 1 (canceled queued job executed)", ran)
	}
}

func TestCloseCancelsQueuedAndRejects(t *testing.T) {
	br := newBlockingRunner()
	svc := New(Options{Workers: 1, QueueCap: 8, Run: br.run})
	defer br.releaseAll()
	if _, err := svc.Submit("t", JobSpec{Experiment: "E10", Seed: 1, Scale: "quick"}); err != nil {
		t.Fatal(err)
	}
	br.waitStart(t)
	queued, err := svc.Submit("t", JobSpec{Experiment: "E10", Seed: 2, Scale: "quick"})
	if err != nil {
		t.Fatal(err)
	}
	closed := make(chan struct{})
	go func() {
		svc.Close()
		close(closed)
	}()
	time.Sleep(20 * time.Millisecond) // let Close mark the queue
	br.releaseAll()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close never returned")
	}
	if j, _ := svc.Get(queued.ID); j.State != Canceled {
		t.Errorf("queued job after Close = %+v", j)
	}
	if _, err := svc.Submit("t", JobSpec{Experiment: "E10", Seed: 3, Scale: "quick"}); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close = %v", err)
	}
}

func TestSubmitValidatesAndRequiresTenant(t *testing.T) {
	svc := New(Options{Workers: 1, Run: func(JobSpec, RunContext) ([]byte, error) {
		return nil, nil
	}})
	defer svc.Close()
	if _, err := svc.Submit("", JobSpec{Experiment: "E10", Scale: "quick"}); err == nil {
		t.Error("empty tenant accepted")
	}
	if _, err := svc.Submit("t", JobSpec{Experiment: "E99", Scale: "quick"}); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestFailedJobReportsError(t *testing.T) {
	col := telemetry.NewCollector()
	svc := New(Options{Workers: 1, Recorder: col, Run: func(JobSpec, RunContext) ([]byte, error) {
		return nil, errors.New("boom")
	}})
	defer svc.Close()
	j, err := svc.Submit("t", JobSpec{Experiment: "E10", Seed: 1, Scale: "quick"})
	if err != nil {
		t.Fatal(err)
	}
	j = waitTerminal(t, svc, j.ID)
	if j.State != Failed || j.Error != "boom" {
		t.Errorf("failed job = %+v", j)
	}
	if got := col.Counter(telemetry.JobsFailed); got != 1 {
		t.Errorf("failed counter = %d", got)
	}
}
