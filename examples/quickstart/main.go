// Quickstart: build a k-party set-disjointness instance, run the optimal
// O(n log k + k) broadcast protocol of Section 5, and compare its exact
// communication against the naive protocol and the paper's cost model.
package main

import (
	"fmt"
	"log"

	"broadcastic/internal/disj"
	"broadcastic/internal/rng"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n    = 8192 // universe size
		k    = 8    // players
		seed = 42
	)
	src := rng.New(seed)

	// A disjoint instance from the paper's hard distribution μ^n: every
	// coordinate has a "special" player that misses it, and each other
	// player misses it with probability 1/k.
	inst, err := disj.GenerateFromMuN(src, n, k)
	if err != nil {
		return err
	}

	truth, err := inst.Disjoint()
	if err != nil {
		return err
	}
	fmt.Printf("instance: n=%d elements, k=%d players, disjoint=%v\n\n", n, k, truth)

	opt, err := disj.SolveOptimal(inst)
	if err != nil {
		return err
	}
	naive, err := disj.SolveNaive(inst)
	if err != nil {
		return err
	}
	fmt.Printf("optimal protocol (Section 5): answer=%v, %d bits in %d messages\n",
		opt.Disjoint, opt.Bits, opt.Messages)
	fmt.Printf("naive protocol (introduction): answer=%v, %d bits in %d messages\n\n",
		naive.Disjoint, naive.Bits, naive.Messages)

	fmt.Printf("cost models: n·log2(k)+k = %.0f, n·log2(n)+k = %.0f\n",
		disj.OptimalCostModel(n, k), disj.NaiveCostModel(n, k))
	fmt.Printf("optimal/model = %.3f, naive/optimal = %.2f×\n",
		float64(opt.Bits)/disj.OptimalCostModel(n, k),
		float64(naive.Bits)/float64(opt.Bits))
	return nil
}
