// Streaming: multi-party set disjointness is the canonical source of
// streaming lower bounds (Alon–Matias–Szegedy). This example plays the
// reduction forward: k shards of a distributed log each hold the set of
// user IDs they saw, and an aggregator must decide whether some user
// appears in every shard (a "hot" user that any exact frequency-moment
// sketch would have to account for). That is exactly non-disjointness of
// the shard sets, and the communication the shards exchange is bounded
// below by the paper's Ω(n log k + k) — this example measures how close
// the Section 5 protocol gets.
package main

import (
	"fmt"
	"log"

	"broadcastic/internal/bitvec"
	"broadcastic/internal/disj"
	"broadcastic/internal/rng"
)

const (
	userSpace = 16384 // distinct user IDs
	numShards = 32
	seed      = 99
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	src := rng.New(seed)

	// Shards see heavy local traffic; with probability 1/2 we also plant
	// one globally hot user into every shard.
	sets := make([]*bitvec.Vector, numShards)
	for i := range sets {
		v, err := bitvec.New(userSpace)
		if err != nil {
			return err
		}
		for u := 0; u < userSpace; u++ {
			if src.Bernoulli(0.6) {
				if err := v.Set(u); err != nil {
					return err
				}
			}
		}
		sets[i] = v
	}
	planted := src.Bool()
	if planted {
		hot := src.Intn(userSpace)
		for _, v := range sets {
			if err := v.Set(hot); err != nil {
				return err
			}
		}
	}

	inst, err := disj.NewInstance(userSpace, sets)
	if err != nil {
		return err
	}
	out, err := disj.SolveOptimal(inst)
	if err != nil {
		return err
	}
	truth, err := inst.Disjoint()
	if err != nil {
		return err
	}
	if out.Disjoint != truth {
		return fmt.Errorf("protocol disagreed with ground truth")
	}

	fmt.Printf("distributed log: %d shards over %d user IDs (hot user planted: %v)\n",
		numShards, userSpace, planted)
	if out.Disjoint {
		fmt.Println("verdict: no user appears in every shard")
	} else {
		u, _, err := inst.CommonElement()
		if err != nil {
			return err
		}
		fmt.Printf("verdict: globally hot user exists (e.g. id %d)\n", u)
	}
	fmt.Printf("communication: %d bits in %d messages\n", out.Bits, out.Messages)
	fmt.Printf("paper lower bound scale n·log2(k)+k: %.0f bits (ratio %.3f)\n",
		disj.OptimalCostModel(userSpace, numShards),
		float64(out.Bits)/disj.OptimalCostModel(userSpace, numShards))
	fmt.Println()
	fmt.Println("Interpretation for streaming: any one-pass exact algorithm whose")
	fmt.Println("state is s bits yields a k-party protocol with ~k·s bits, so the")
	fmt.Printf("Ω(n log k) bound forces s = Ω(n log k / k) ≈ %.0f bits of state here.\n",
		disj.OptimalCostModel(userSpace, numShards)/float64(numShards))
	return nil
}
