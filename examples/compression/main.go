// Compression: walk through Section 6 end to end. First transmit single
// messages with the Lemma 7 rejection sampler and watch the cost track the
// prior/posterior divergence; then compress a full protocol execution
// round by round; finally reproduce the Theorem 3 effect — the per-copy
// cost of many parallel copies converging to the external information cost.
package main

import (
	"fmt"
	"log"

	"broadcastic/internal/andk"
	"broadcastic/internal/compress"
	"broadcastic/internal/core"
	"broadcastic/internal/dist"
	"broadcastic/internal/encoding"
	"broadcastic/internal/info"
	"broadcastic/internal/prob"
	"broadcastic/internal/rng"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Part 1: one-shot sampling (Lemma 7).
	fmt.Println("— Lemma 7: one-shot message transmission —")
	public := rng.New(1)
	eta, err := prob.NewDist([]float64{0.9, 0.05, 0.05})
	if err != nil {
		return err
	}
	for _, priorMass := range []float64{0.6, 0.1, 0.01} {
		nu, err := prob.NewDist([]float64{priorMass, (1 - priorMass) / 2, (1 - priorMass) / 2})
		if err != nil {
			return err
		}
		d, err := info.KL(eta, nu)
		if err != nil {
			return err
		}
		const trials = 3000
		bits := 0
		for i := 0; i < trials; i++ {
			res, err := compress.Transmit(eta, nu, public)
			if err != nil {
				return err
			}
			bits += res.Bits
		}
		fmt.Printf("  D(eta||nu) = %6.3f bits  →  mean cost %6.3f bits\n",
			d, float64(bits)/trials)
	}

	// Part 2: compress a whole protocol run.
	fmt.Println("\n— Compressing a protocol execution round by round —")
	const k = 6
	spec, err := andk.NewSequential(k)
	if err != nil {
		return err
	}
	mu, err := dist.NewMu(k)
	if err != nil {
		return err
	}
	exact, err := core.ExactCosts(spec, mu, core.TreeLimits{})
	if err != nil {
		return err
	}
	src := rng.New(2)
	const runs = 2000
	var compressed, original float64
	for i := 0; i < runs; i++ {
		_, x, err := core.SamplePrior(mu, src)
		if err != nil {
			return err
		}
		res, err := compress.CompressRun(spec, mu, x, public)
		if err != nil {
			return err
		}
		compressed += float64(res.CompressedBits)
		original += float64(res.OriginalBits)
	}
	fmt.Printf("  AND_%d sequential protocol under mu:\n", k)
	fmt.Printf("  external information cost IC      = %6.3f bits\n", exact.ExternalIC)
	fmt.Printf("  uncompressed mean communication   = %6.3f bits\n", original/runs)
	fmt.Printf("  compressed mean communication     = %6.3f bits (IC + per-round overhead)\n",
		compressed/runs)

	// Classical one-way reference (Huffman): shipping the entire input to
	// the observer costs H(X) + O(1) bits — far more than the protocol
	// reveals, which is the whole point of interactive information cost.
	inputDist, err := muInputDist(mu, k)
	if err != nil {
		return err
	}
	code, err := encoding.NewHuffman(inputDist)
	if err != nil {
		return err
	}
	huff, err := code.ExpectedLength(inputDist)
	if err != nil {
		return err
	}
	fmt.Printf("  one-way baseline (Huffman of X)   = %6.3f bits (H(X) = %.3f)\n",
		huff, info.Entropy(inputDist))

	// Part 3: amortization (Theorem 3).
	fmt.Println("\n— Theorem 3: amortized compression over parallel copies —")
	curve, err := compress.AmortizedCurve(spec, mu, []int{1, 8, 64, 256}, 30, rng.New(3))
	if err != nil {
		return err
	}
	for _, pt := range curve {
		fmt.Printf("  n = %4d copies  →  per-copy %6.3f bits  (IC = %.3f)\n",
			pt.Copies, pt.PerCopyBits, exact.ExternalIC)
	}
	fmt.Println("\n  The per-copy cost approaches IC from above: information equals")
	fmt.Println("  amortized communication, now measured rather than proved.")
	return nil
}

// muInputDist materializes the marginal distribution of the full input
// vector X ∈ {0,1}^k under μ, indexed by bitmask.
func muInputDist(mu *dist.Mu, k int) (prob.Dist, error) {
	w := make([]float64, 1<<uint(k))
	x := make([]int, k)
	for mask := range w {
		for i := range x {
			x[i] = mask >> uint(i) & 1
		}
		p, err := mu.Prob(x)
		if err != nil {
			return prob.Dist{}, err
		}
		w[mask] = p
	}
	return prob.Normalize(w)
}
