// Lowerbound: walk through the Section 4.1 proof numerically. We take the
// sequential AND_k protocol at k = 8, enumerate its complete transcript
// tree under the hard distribution μ, and print the proof's own objects:
// the Lemma 3 q-factors, the α_i coefficients and Lemma 4 posteriors, the
// good-transcript decomposition of Lemma 5, and the resulting conditional
// information cost against the Ω(log k) target.
package main

import (
	"fmt"
	"log"
	"math"

	"broadcastic/internal/andk"
	"broadcastic/internal/core"
	"broadcastic/internal/dist"
)

const k = 8

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	spec, err := andk.NewSequential(k)
	if err != nil {
		return err
	}
	mu, err := dist.NewMu(k)
	if err != nil {
		return err
	}

	fmt.Printf("AND_%d, sequential protocol, hard distribution μ (Section 4.1)\n\n", k)

	leaves, err := core.EnumerateTranscripts(spec, core.TreeLimits{})
	if err != nil {
		return err
	}
	fmt.Printf("complete transcripts: %d (the prefix-free set 0, 10, ..., 1^%d)\n\n", len(leaves), k)

	fmt.Println("Per-transcript pointing (Lemma 4): α_i = q_{i,0}/q_{i,1} and the")
	fmt.Println("posterior Pr[X_i = 0 | Π = ℓ, Z ≠ i] = α/(α+k−1):")
	for _, leaf := range leaves {
		alphas, err := core.Alphas(leaf)
		if err != nil {
			return err
		}
		maxAlpha, argmax := math.Inf(-1), -1
		for i, a := range alphas {
			if a > maxAlpha {
				maxAlpha, argmax = a, i
			}
		}
		pi2, err := core.SliceTranscriptProb(leaf, 2)
		if err != nil {
			return err
		}
		post := core.PosteriorZeroGivenNotSpecial(maxAlpha, k)
		fmt.Printf("  ℓ=%-18s π₂(ℓ)=%6.4f  out=%d  max α at player %d (α=%v)  posterior=%5.3f\n",
			leaf.Transcript.String(), pi2, leaf.Output, argmax, maxAlpha, post)
	}

	report, err := core.AnalyzeGoodTranscripts(leaves, 20, 1)
	if err != nil {
		return err
	}
	fmt.Println("\nLemma 5 decomposition of π₂ mass:")
	fmt.Printf("  B₁ (wrong output on X₂):        %6.4f\n", report.MassB1)
	fmt.Printf("  B₀ (fails likelihood test):     %6.4f\n", report.MassB0)
	fmt.Printf("  L' (good, prefers X₂ over X₃):  %6.4f\n", report.MassLPrime)
	fmt.Printf("  pointed (some α_i ≥ k):         %6.4f\n", report.MassPointed)

	costs, err := core.ExactCosts(spec, mu, core.TreeLimits{})
	if err != nil {
		return err
	}
	fmt.Println("\nThe chain the proof follows: pointed mass × (p·log k − 1) lower-bounds")
	fmt.Println("the information cost (Eq. 3–4 + Lemma 2):")
	fmt.Printf("  CIC = I(Π; X | Z)  = %6.4f bits (exact)\n", costs.CIC)
	fmt.Printf("  IC  = I(Π; X)      = %6.4f bits (exact)\n", costs.ExternalIC)
	fmt.Printf("  log₂ k reference   = %6.4f bits\n", math.Log2(k))
	fmt.Printf("  worst-case CC      = %d bits → gap CC/IC = %.2f (k/log₂k = %.2f)\n",
		costs.WorstCaseBits,
		float64(costs.WorstCaseBits)/costs.ExternalIC,
		float64(k)/math.Log2(k))
	return nil
}
