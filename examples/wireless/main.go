// Wireless: the paper notes the broadcast model "can also be viewed as an
// abstract model of single-hop wireless networks". This example plays that
// out: k radios each observe a set of interference-free channels out of n,
// and the fleet must decide whether some channel is clear for *every*
// radio — i.e. whether the complements are non-disjoint. Airtime is the
// scarce resource, so the protocols' bit counts are exactly what a MAC
// designer would budget.
package main

import (
	"fmt"
	"log"

	"broadcastic/internal/bitvec"
	"broadcastic/internal/disj"
	"broadcastic/internal/radio"
	"broadcastic/internal/rng"
)

const (
	numChannels = 4096
	numRadios   = 16
	seed        = 7
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	src := rng.New(seed)

	// Each radio hears local interference on ~30% of channels, plus one
	// region-wide jammer pattern shared by everyone. A channel is usable
	// for the fleet iff it is clear at every radio.
	jammer, err := bitvec.New(numChannels)
	if err != nil {
		return err
	}
	for c := 0; c < numChannels; c++ {
		if src.Bernoulli(0.4) {
			if err := jammer.Set(c); err != nil {
				return err
			}
		}
	}
	blocked := make([]*bitvec.Vector, numRadios)
	for r := range blocked {
		v := jammer.Clone()
		for c := 0; c < numChannels; c++ {
			if src.Bernoulli(0.3) {
				if err := v.Set(c); err != nil {
					return err
				}
			}
		}
		blocked[r] = v
	}

	// "Some channel clear at every radio" ⇔ the *blocked* sets do not
	// cover some channel jointly ⇔ the clear sets have non-empty
	// intersection. DISJ convention: Sets[i] = channels clear at radio i;
	// answer disjoint=false means a fleet-wide channel exists.
	clear := make([]*bitvec.Vector, numRadios)
	for r, b := range blocked {
		c := b.Clone()
		c.Not()
		clear[r] = c
	}
	inst, err := disj.NewInstance(numChannels, clear)
	if err != nil {
		return err
	}

	truth, err := inst.Disjoint()
	if err != nil {
		return err
	}
	out, err := disj.SolveOptimal(inst)
	if err != nil {
		return err
	}
	if out.Disjoint != truth {
		return fmt.Errorf("protocol disagreed with ground truth")
	}

	fmt.Printf("fleet: %d radios, %d channels\n", numRadios, numChannels)
	if !out.Disjoint {
		ch, _, err := inst.CommonElement()
		if err != nil {
			return err
		}
		fmt.Printf("verdict: fleet-wide clear channel exists (e.g. channel %d)\n", ch)
	} else {
		fmt.Println("verdict: no channel is clear at every radio")
	}
	fmt.Printf("airtime used by the Section 5 protocol: %d bits in %d transmissions\n",
		out.Bits, out.Messages)
	fmt.Printf("airtime budget model n·log2(k)+k: %.0f bits (ratio %.3f)\n",
		disj.OptimalCostModel(numChannels, numRadios),
		float64(out.Bits)/disj.OptimalCostModel(numChannels, numRadios))

	naive, err := disj.SolveNaive(inst)
	if err != nil {
		return err
	}
	fmt.Printf("naive coordination would cost %d bits (%.2f× more airtime)\n",
		naive.Bits, float64(naive.Bits)/float64(out.Bits))

	// Put the contention back (the detail the blackboard model abstracts
	// away): map the same execution onto a slotted channel, polled and
	// contended.
	const payload = 32
	_, polled, err := radio.RunPolledDisj(inst, payload)
	if err != nil {
		return err
	}
	_, contended, err := radio.ContentionDisj(inst, payload, rng.New(seed+1))
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Printf("slotted channel (%d-bit slots):\n", payload)
	fmt.Printf("  polled schedule:   %5d slots (%d data, %d control)\n",
		polled.TotalSlots(), polled.DataSlots, polled.ControlSlots)
	fmt.Printf("  contention (MAC):  %5d slots (%d data, %d control, %d collisions)\n",
		contended.TotalSlots(), contended.DataSlots, contended.ControlSlots, contended.Collisions)
	return nil
}
