package broadcastic_test

// One benchmark per reproduced claim (see DESIGN.md §3 and EXPERIMENTS.md).
// Each benchmark regenerates its experiment's table and prints it once, so
//
//	go test -bench=. -benchmem
//
// reproduces every figure/table of the reproduction. Set
// BROADCASTIC_SCALE=quick to run the reduced parameter grids and
// BROADCASTIC_WORKERS=N to bound sweep parallelism (default: one worker
// per CPU; tables are bit-identical for every value).

import (
	"os"
	"strconv"
	"testing"

	"broadcastic/internal/sim"
)

func benchConfig() sim.Config {
	cfg := sim.Config{Seed: 1, Scale: sim.Full}
	if os.Getenv("BROADCASTIC_SCALE") == "quick" {
		cfg.Scale = sim.Quick
	}
	if w, err := strconv.Atoi(os.Getenv("BROADCASTIC_WORKERS")); err == nil {
		cfg.Workers = w
	}
	return cfg
}

func runExperiment(b *testing.B, f func(sim.Config) (*sim.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := f(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			if err := tbl.Render(os.Stdout); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkE1_DisjScalingN(b *testing.B)          { runExperiment(b, sim.E1DisjScalingN) }
func BenchmarkE2_DisjScalingK(b *testing.B)          { runExperiment(b, sim.E2DisjScalingK) }
func BenchmarkE3_NaiveVsOptimal(b *testing.B)        { runExperiment(b, sim.E3NaiveVsOptimal) }
func BenchmarkE4_AndInfoCost(b *testing.B)           { runExperiment(b, sim.E4AndInfoCost) }
func BenchmarkE5_DirectSum(b *testing.B)             { runExperiment(b, sim.E5DirectSum) }
func BenchmarkE6_TruncatedError(b *testing.B)        { runExperiment(b, sim.E6TruncatedError) }
func BenchmarkE7_InfoCommGap(b *testing.B)           { runExperiment(b, sim.E7InfoCommGap) }
func BenchmarkE8_GoodTranscripts(b *testing.B)       { runExperiment(b, sim.E8GoodTranscripts) }
func BenchmarkE9_PosteriorPointing(b *testing.B)     { runExperiment(b, sim.E9PosteriorPointing) }
func BenchmarkE10_RejectionSampler(b *testing.B)     { runExperiment(b, sim.E10RejectionSampler) }
func BenchmarkE11_AmortizedCompression(b *testing.B) { runExperiment(b, sim.E11AmortizedCompression) }
func BenchmarkE12_DivergenceBound(b *testing.B)      { runExperiment(b, sim.E12DivergenceBound) }
func BenchmarkE13_SparseIntersection(b *testing.B)   { runExperiment(b, sim.E13SparseIntersection) }

func BenchmarkE14_Ablations(b *testing.B) { runExperiment(b, sim.E14Ablations) }

func BenchmarkE15_TwoPartyBaseline(b *testing.B) { runExperiment(b, sim.E15TwoPartyBaseline) }

func BenchmarkE16_CostBreakdown(b *testing.B) { runExperiment(b, sim.E16CostBreakdown) }

func BenchmarkE17_PointwiseOr(b *testing.B) { runExperiment(b, sim.E17PointwiseOr) }

func BenchmarkE18_InternalVsExternal(b *testing.B) { runExperiment(b, sim.E18InternalVsExternal) }

func BenchmarkE19_WirelessContention(b *testing.B) { runExperiment(b, sim.E19WirelessContention) }
