package broadcastic_test

// One benchmark per reproduced claim (see DESIGN.md §3 and EXPERIMENTS.md).
// Each benchmark regenerates its experiment's table and prints it once, so
//
//	go test -bench=. -benchmem
//
// reproduces every figure/table of the reproduction. Set
// BROADCASTIC_SCALE=quick to run the reduced parameter grids and
// BROADCASTIC_WORKERS=N to bound sweep parallelism (default: one worker
// per CPU; tables are bit-identical for every value).
//
// Machine-readable output: with BROADCASTIC_BENCH_JSON=<path> set, the
// shared harness aggregates every benchmark invocation (across -count
// repeats) and TestMain writes one benchjson File to <path> — the format
// the CI perf gate (cmd/benchgate) compares against BENCH_baseline.json.
// Each entry carries mean and min ns/op, allocs/op, recorded bits/op
// (board + wire bits where the instrumented layers ran) and the full
// per-op telemetry snapshot.

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"broadcastic/internal/andk"
	"broadcastic/internal/batch"
	"broadcastic/internal/core"
	"broadcastic/internal/disj"
	"broadcastic/internal/dist"
	"broadcastic/internal/ir"
	"broadcastic/internal/pool"
	"broadcastic/internal/prob"
	"broadcastic/internal/rng"
	"broadcastic/internal/sim"
	"broadcastic/internal/telemetry"
	"broadcastic/internal/telemetry/benchjson"
)

func benchScale() string {
	if os.Getenv("BROADCASTIC_SCALE") == "quick" {
		return "quick"
	}
	return "full"
}

func benchConfig() sim.Config {
	cfg := sim.Config{Seed: 1, Scale: sim.Full}
	if benchScale() == "quick" {
		cfg.Scale = sim.Quick
	}
	if w, err := strconv.Atoi(os.Getenv("BROADCASTIC_WORKERS")); err == nil {
		cfg.Workers = w
	}
	return cfg
}

// benchSamples accumulates one sample per benchmark invocation (so -count N
// contributes N samples per op) for the TestMain JSON export.
var benchSamples struct {
	sync.Mutex
	byName map[string]*benchjson.Entry
}

// recordSample folds one benchmark invocation into the aggregate entry:
// iterations sum, ns/op as the mean of sample means plus the min sample,
// allocs/op and metrics as running means across samples.
func recordSample(name string, iters int64, nsPerOp, allocsPerOp float64, snapshot map[string]float64) {
	benchSamples.Lock()
	defer benchSamples.Unlock()
	if benchSamples.byName == nil {
		benchSamples.byName = make(map[string]*benchjson.Entry)
	}
	e := benchSamples.byName[name]
	if e == nil {
		e = &benchjson.Entry{Name: name, MinNsPerOp: nsPerOp}
		benchSamples.byName[name] = e
	}
	n := float64(e.Samples)
	e.Samples++
	e.Iterations += iters
	e.NsPerOp = (e.NsPerOp*n + nsPerOp) / (n + 1)
	if nsPerOp < e.MinNsPerOp {
		e.MinNsPerOp = nsPerOp
	}
	e.AllocsPerOp = (e.AllocsPerOp*n + allocsPerOp) / (n + 1)
	bits := snapshot[telemetry.BlackboardBits] + snapshot[telemetry.NetrunWireBits]
	e.BitsPerOp = (e.BitsPerOp*n + bits) / (n + 1)
	if len(snapshot) > 0 && e.Metrics == nil {
		e.Metrics = make(map[string]float64, len(snapshot))
	}
	for k, v := range snapshot {
		e.Metrics[k] = (e.Metrics[k]*n + v) / (n + 1)
	}
}

// writeBenchJSON exports the aggregated samples to path.
func writeBenchJSON(path string) error {
	benchSamples.Lock()
	defer benchSamples.Unlock()
	if len(benchSamples.byName) == 0 {
		return nil
	}
	f := benchjson.New(benchScale(), pool.Workers(benchConfig().Workers))
	f.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	for _, e := range benchSamples.byName {
		f.AddEntry(*e)
	}
	return benchjson.WriteFile(path, f)
}

func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("BROADCASTIC_BENCH_JSON"); path != "" && code == 0 {
		if err := writeBenchJSON(path); err != nil {
			fmt.Fprintf(os.Stderr, "bench json export: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

func runExperiment(b *testing.B, f func(sim.Config) (*sim.Table, error)) {
	b.Helper()
	rec := telemetry.NewCollector()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mallocsBefore := ms.Mallocs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		cfg.Recorder = rec
		tbl, err := f(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.StopTimer()
			if err := tbl.Render(os.Stdout); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
	elapsed := b.Elapsed()
	runtime.ReadMemStats(&ms)
	n := float64(b.N)
	snap := rec.Snapshot()
	for k, v := range snap {
		snap[k] = v / n
	}
	recordSample(b.Name(), int64(b.N), float64(elapsed)/n, float64(ms.Mallocs-mallocsBefore)/n, snap)
}

func BenchmarkE1_DisjScalingN(b *testing.B)          { runExperiment(b, sim.E1DisjScalingN) }
func BenchmarkE2_DisjScalingK(b *testing.B)          { runExperiment(b, sim.E2DisjScalingK) }
func BenchmarkE3_NaiveVsOptimal(b *testing.B)        { runExperiment(b, sim.E3NaiveVsOptimal) }
func BenchmarkE4_AndInfoCost(b *testing.B)           { runExperiment(b, sim.E4AndInfoCost) }
func BenchmarkE5_DirectSum(b *testing.B)             { runExperiment(b, sim.E5DirectSum) }
func BenchmarkE6_TruncatedError(b *testing.B)        { runExperiment(b, sim.E6TruncatedError) }
func BenchmarkE7_InfoCommGap(b *testing.B)           { runExperiment(b, sim.E7InfoCommGap) }
func BenchmarkE8_GoodTranscripts(b *testing.B)       { runExperiment(b, sim.E8GoodTranscripts) }
func BenchmarkE9_PosteriorPointing(b *testing.B)     { runExperiment(b, sim.E9PosteriorPointing) }
func BenchmarkE10_RejectionSampler(b *testing.B)     { runExperiment(b, sim.E10RejectionSampler) }
func BenchmarkE11_AmortizedCompression(b *testing.B) { runExperiment(b, sim.E11AmortizedCompression) }
func BenchmarkE12_DivergenceBound(b *testing.B)      { runExperiment(b, sim.E12DivergenceBound) }
func BenchmarkE13_SparseIntersection(b *testing.B)   { runExperiment(b, sim.E13SparseIntersection) }

func BenchmarkE14_Ablations(b *testing.B) { runExperiment(b, sim.E14Ablations) }

func BenchmarkE15_TwoPartyBaseline(b *testing.B) { runExperiment(b, sim.E15TwoPartyBaseline) }

func BenchmarkE16_CostBreakdown(b *testing.B) { runExperiment(b, sim.E16CostBreakdown) }

func BenchmarkE17_PointwiseOr(b *testing.B) { runExperiment(b, sim.E17PointwiseOr) }

func BenchmarkE18_InternalVsExternal(b *testing.B) { runExperiment(b, sim.E18InternalVsExternal) }

func BenchmarkE19_WirelessContention(b *testing.B) { runExperiment(b, sim.E19WirelessContention) }

func BenchmarkE20_NetworkedOverhead(b *testing.B) { runExperiment(b, sim.E20NetworkedOverhead) }

func BenchmarkE21_TopologySeparation(b *testing.B) { runExperiment(b, sim.E21TopologySeparation) }

// --- Hot-path micro-benchmarks -------------------------------------------
//
// The engine-level counterparts of the experiment benchmarks above: they
// time the Monte-Carlo estimator and the categorical sampler directly, so
// the BENCH_*.json trajectory shows where an experiment-level change came
// from. They flow through recordSample like everything else and are gated
// by cmd/benchgate alongside the experiment entries.

// benchEstimateCIC times EstimateCIC on the sequential AND_k protocol
// under the paper's hard distribution μ — the exact workload inside E4/E5
// — at a fixed modest sample count so ns/op measures engine cost, not grid
// size.
func benchEstimateCIC(b *testing.B, k int) {
	b.Helper()
	spec, err := andk.NewSequential(k)
	if err != nil {
		b.Fatal(err)
	}
	mu, err := dist.NewMu(k)
	if err != nil {
		b.Fatal(err)
	}
	const samples = 200
	// Untimed warm-up op (same idiom as benchDistSample): builds the CDF
	// and lane-scratch caches so a single timed iteration measures the
	// steady-state estimator, keeping ns/op meaningful at -benchtime 1x.
	if _, err := core.EstimateCIC(spec, mu, rng.New(1), samples); err != nil {
		b.Fatal(err)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mallocsBefore := ms.Mallocs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := rng.New(1)
		if _, err := core.EstimateCIC(spec, mu, src, samples); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := b.Elapsed()
	runtime.ReadMemStats(&ms)
	n := float64(b.N)
	recordSample(b.Name(), int64(b.N), float64(elapsed)/n, float64(ms.Mallocs-mallocsBefore)/n, nil)
}

func BenchmarkEstimateCIC_K4(b *testing.B)  { benchEstimateCIC(b, 4) }
func BenchmarkEstimateCIC_K16(b *testing.B) { benchEstimateCIC(b, 16) }
func BenchmarkEstimateCIC_K64(b *testing.B) { benchEstimateCIC(b, 64) }

// benchEstimateCICCompiled is the same workload pinned to the compiled-IR
// engine: it runs the default engine resolution but fails the benchmark
// unless the IR program served every sample, so the gated number can
// never silently degrade into measuring a fallback engine.
func benchEstimateCICCompiled(b *testing.B, k int) {
	b.Helper()
	spec, err := andk.NewSequential(k)
	if err != nil {
		b.Fatal(err)
	}
	mu, err := dist.NewMu(k)
	if err != nil {
		b.Fatal(err)
	}
	const samples = 200
	col := telemetry.NewCollector()
	opts := core.EstimateOptions{Recorder: col}
	// Untimed warm-up op, as in benchEstimateCIC; also compiles and caches
	// the program so timed ops measure cached-program execution.
	if _, err := core.EstimateCICOpts(spec, mu, rng.New(1), samples, opts); err != nil {
		b.Fatal(err)
	}
	col.Reset()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mallocsBefore := ms.Mallocs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := rng.New(1)
		if _, err := core.EstimateCICOpts(spec, mu, src, samples, opts); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := b.Elapsed()
	runtime.ReadMemStats(&ms)
	b.StopTimer()
	snap := col.Snapshot()
	if got := snap[telemetry.CoreCICIRSamples]; got != float64(samples)*float64(b.N) {
		b.Fatalf("IR engine served %v samples, want %d×%d", got, samples, b.N)
	}
	if got := snap[telemetry.IRProgramMisses]; got != 0 {
		b.Fatalf("timed ops recompiled the program %v times, want cache hits only", got)
	}
	n := float64(b.N)
	for name, v := range snap {
		snap[name] = v / n
	}
	recordSample(b.Name(), int64(b.N), float64(elapsed)/n, float64(ms.Mallocs-mallocsBefore)/n, snap)
}

func BenchmarkEstimateCICCompiled_K4(b *testing.B)  { benchEstimateCICCompiled(b, 4) }
func BenchmarkEstimateCICCompiled_K16(b *testing.B) { benchEstimateCICCompiled(b, 16) }
func BenchmarkEstimateCICCompiled_K64(b *testing.B) { benchEstimateCICCompiled(b, 64) }

// BenchmarkIRCompile times one uncached CompileEstimator of the K16
// sequential AND_k protocol under μ — the cost the program cache
// amortizes away. irCompileSpec adapts core.Spec's Transcript signatures
// to ir.Spec's plain []int ones, as internal/core does privately.
func BenchmarkIRCompile(b *testing.B) {
	const k = 16
	spec, err := andk.NewSequential(k)
	if err != nil {
		b.Fatal(err)
	}
	mu, err := dist.NewMu(k)
	if err != nil {
		b.Fatal(err)
	}
	a := irCompileSpec{spec}
	if ir.CompileEstimator(a, mu) == nil {
		b.Fatal("K16 sequential AND compiles to nil")
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mallocsBefore := ms.Mallocs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ir.CompileEstimator(a, mu) == nil {
			b.Fatal("compile failed")
		}
	}
	elapsed := b.Elapsed()
	runtime.ReadMemStats(&ms)
	n := float64(b.N)
	recordSample(b.Name(), int64(b.N), float64(elapsed)/n, float64(ms.Mallocs-mallocsBefore)/n, nil)
}

type irCompileSpec struct{ s core.Spec }

func (a irCompileSpec) NumPlayers() int { return a.s.NumPlayers() }
func (a irCompileSpec) InputSize() int  { return a.s.InputSize() }
func (a irCompileSpec) NextSpeaker(t []int) (int, bool, error) {
	return a.s.NextSpeaker(core.Transcript(t))
}
func (a irCompileSpec) MessageAlphabet(t []int) (int, error) {
	return a.s.MessageAlphabet(core.Transcript(t))
}
func (a irCompileSpec) MessageDist(t []int, player, input int) (prob.Dist, error) {
	return a.s.MessageDist(core.Transcript(t), player, input)
}
func (a irCompileSpec) MessageBits(t []int, symbol int) (int, error) {
	return a.s.MessageBits(core.Transcript(t), symbol)
}
func (a irCompileSpec) Output(t []int) (int, error) { return a.s.Output(core.Transcript(t)) }

// benchEstimateCICScalar is the same workload with both fast engines
// disabled, keeping the scalar estimator's cost on file so the
// BENCH_*.json trajectory shows the compiled and word-parallel wins (and
// any scalar regression) separately from the default path.
func benchEstimateCICScalar(b *testing.B, k int) {
	b.Helper()
	spec, err := andk.NewSequential(k)
	if err != nil {
		b.Fatal(err)
	}
	mu, err := dist.NewMu(k)
	if err != nil {
		b.Fatal(err)
	}
	const samples = 200
	opts := core.EstimateOptions{DisableIR: true, DisableLanes: true}
	// Untimed warm-up op, as in benchEstimateCIC.
	if _, err := core.EstimateCICOpts(spec, mu, rng.New(1), samples, opts); err != nil {
		b.Fatal(err)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mallocsBefore := ms.Mallocs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := rng.New(1)
		if _, err := core.EstimateCICOpts(spec, mu, src, samples, opts); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := b.Elapsed()
	runtime.ReadMemStats(&ms)
	n := float64(b.N)
	recordSample(b.Name(), int64(b.N), float64(elapsed)/n, float64(ms.Mallocs-mallocsBefore)/n, nil)
}

func BenchmarkEstimateCICScalar_K16(b *testing.B) { benchEstimateCICScalar(b, 16) }

// BenchmarkParallelSpecScalar times the scalar estimator on the 4-fold
// parallel AND_4 task (ParallelSpec over ProductOfPriors) with both fast
// engines disabled — the workload whose per-step transcript re-splitting
// the memoized ParallelSpec walk turns from O(L²) to O(L) interface
// calls. A regression here means the split memo stopped engaging.
func BenchmarkParallelSpecScalar(b *testing.B) {
	const k, copies = 4, 4
	base, err := andk.NewSequential(k)
	if err != nil {
		b.Fatal(err)
	}
	spec, err := core.NewParallelSpec(base, copies)
	if err != nil {
		b.Fatal(err)
	}
	mu, err := dist.NewMu(k)
	if err != nil {
		b.Fatal(err)
	}
	prior, err := core.NewProductOfPriors(mu, copies)
	if err != nil {
		b.Fatal(err)
	}
	const samples = 50
	opts := core.EstimateOptions{DisableIR: true, DisableLanes: true}
	// Untimed warm-up op, as in benchEstimateCIC.
	if _, err := core.EstimateCICOpts(spec, prior, rng.New(1), samples, opts); err != nil {
		b.Fatal(err)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mallocsBefore := ms.Mallocs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := rng.New(1)
		if _, err := core.EstimateCICOpts(spec, prior, src, samples, opts); err != nil {
			b.Fatal(err)
		}
	}
	elapsed := b.Elapsed()
	runtime.ReadMemStats(&ms)
	n := float64(b.N)
	recordSample(b.Name(), int64(b.N), float64(elapsed)/n, float64(ms.Mallocs-mallocsBefore)/n, nil)
}

// BenchmarkBatchExec_K64 times the raw 64-lane executor on the 64-player
// sequential AND kernel: one op runs 64 protocol instances to completion,
// so ns/op is the engine's cost per word of decisions.
func BenchmarkBatchExec_K64(b *testing.B) {
	const k = 64
	ex, err := batch.NewExec(batch.LaneSpec{Players: k, SpeakCap: k, HaltOnZero: true})
	if err != nil {
		b.Fatal(err)
	}
	inputs := make([]uint64, k)
	rng.New(1).Uint64s(inputs)
	var sink uint64
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mallocsBefore := ms.Mallocs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := ex.Run(inputs, ^uint64(0))
		if err != nil {
			b.Fatal(err)
		}
		sink ^= out
	}
	elapsed := b.Elapsed()
	runtime.ReadMemStats(&ms)
	if sink == 1<<63 {
		b.Fatal("impossible")
	}
	n := float64(b.N)
	recordSample(b.Name(), int64(b.N), float64(elapsed)/n, float64(ms.Mallocs-mallocsBefore)/n, nil)
}

// BenchmarkGenerateFromMuNBatch times batched μ^n instance generation at
// the E1 quick-scale shape (n=256, k=4): one op fills all 64 lanes and
// reads back the disjointness ground truth, reusing the batch across
// iterations the way the sim loop does.
func BenchmarkGenerateFromMuNBatch(b *testing.B) {
	const n, k = 256, 4
	src := rng.New(1)
	var dst *disj.BatchInstance
	var sink int
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mallocsBefore := ms.Mallocs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = disj.GenerateFromMuNBatch(dst, src, n, k, batch.Lanes)
		if err != nil {
			b.Fatal(err)
		}
		sink += dst.CountDisjoint()
	}
	elapsed := b.Elapsed()
	runtime.ReadMemStats(&ms)
	if sink < 0 {
		b.Fatal("impossible")
	}
	n2 := float64(b.N)
	recordSample(b.Name(), int64(b.N), float64(elapsed)/n2, float64(ms.Mallocs-mallocsBefore)/n2, nil)
}

// benchDistSample times prob.Dist.Sample over a 256-outcome distribution
// (comfortably above cdfMinSize, so the production size heuristic picks
// the table), with and without the cumulative-distribution cache
// (Uncached strips it), pinning the linear-scan → binary-search win and
// watching for cache construction creep. One op is a fixed batch of
// draws (with the cache built before timing), so ns/op is meaningful
// even at -benchtime 1x — the regime the baseline-refresh procedure
// runs in.
func benchDistSample(b *testing.B, cached bool) {
	b.Helper()
	const drawsPerOp = 1000
	d, err := prob.Uniform(256)
	if err != nil {
		b.Fatal(err)
	}
	if !cached {
		d = d.Uncached()
	}
	src := rng.New(1)
	sink := d.Sample(src) // warm-up draw builds the CDF cache when present
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mallocsBefore := ms.Mallocs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < drawsPerOp; j++ {
			sink += d.Sample(src)
		}
	}
	elapsed := b.Elapsed()
	runtime.ReadMemStats(&ms)
	if sink < 0 {
		b.Fatal("impossible")
	}
	n := float64(b.N)
	recordSample(b.Name(), int64(b.N), float64(elapsed)/n, float64(ms.Mallocs-mallocsBefore)/n, nil)
}

func BenchmarkDistSample_CachedCDF(b *testing.B)  { benchDistSample(b, true) }
func BenchmarkDistSample_LinearScan(b *testing.B) { benchDistSample(b, false) }
